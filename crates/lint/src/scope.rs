//! A brace-matched item/scope parser over the token stream — deliberately
//! *not* a full AST.
//!
//! The structural rules (`oracle-freeze`, `panic-reachability`,
//! `lock-across-blocking`, `unordered-float-reduction`) need to know where
//! functions begin and end, what they are called, whether they are `pub`,
//! and which `impl`/`mod` they live in. Nothing more: expressions stay
//! opaque token runs, and rules match patterns inside a function's token
//! range with the same explicit-token discipline as the flat rules.
//!
//! The parser walks the code tokens once with a scope stack (modules, impl
//! blocks, traits, functions, anonymous braces). It is resilient by
//! construction: unknown constructs fall into anonymous scopes, and
//! unbalanced input simply truncates at end of file — the analyzer must
//! never crash on the code it is judging. Closures are left to the rules
//! (they carry no name and are always inside some function's range, which
//! is the granularity the rules need).

use crate::lexer::{Token, TokenKind};

/// One function item found by the scope parser.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Simple name, e.g. `matmul_reference`.
    pub name: String,
    /// Qualified name: `Type::name` inside an `impl Type`/`trait Type`
    /// block, `module::name` inside a named inline module, plain `name` at
    /// file scope. Nested qualifiers chain left to right.
    pub qual: String,
    /// True for bare `pub` (not `pub(crate)`/`pub(super)` — those are not
    /// part of the crate's external API surface).
    pub is_pub: bool,
    /// Index (into the file's full token vec) of the `fn` keyword.
    pub sig_start: usize,
    /// Index of the body's opening `{` token.
    pub body_open: usize,
    /// Index of the body's closing `}` token (or the last token of the file
    /// when the input is truncated).
    pub body_close: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// What kind of named scope a stack frame represents.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ScopeKind {
    /// `mod name { … }` — contributes `name::` to qualifiers.
    Module(String),
    /// `impl Type { … }` / `trait Type { … }` — contributes `Type::`.
    ImplLike(String),
    /// A function body (qualifier already fixed at entry).
    Fn,
    /// Any other brace pair: blocks, match arms, struct literals, macros.
    Anonymous,
}

struct Frame {
    kind: ScopeKind,
    /// Index into the pending-fn list, for [`ScopeKind::Fn`] frames.
    fn_slot: Option<usize>,
}

/// Keywords that can never be a call or a path qualifier; used when
/// deciding whether an identifier before `(`/`[` means a call/index.
pub const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

/// True when `name` is a Rust keyword (from the subset the parser cares
/// about).
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Parses the function items of a lexed file. `tokens` is the full token
/// stream (comments included — they are skipped internally, so indices in
/// the returned items refer to the same vec).
pub fn parse_fns(tokens: &[Token]) -> Vec<FnItem> {
    // Work over code tokens, but remember their original indices.
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_code())
        .collect();

    let mut items: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let (orig, tok) = code[i];
        match tok.kind {
            TokenKind::Punct if tok.is_punct('{') => {
                stack.push(Frame {
                    kind: ScopeKind::Anonymous,
                    fn_slot: None,
                });
                i += 1;
            }
            TokenKind::Punct if tok.is_punct('}') => {
                if let Some(frame) = stack.pop() {
                    if let Some(slot) = frame.fn_slot {
                        if let Some(item) = items.get_mut(slot) {
                            item.body_close = orig;
                        }
                    }
                }
                i += 1;
            }
            TokenKind::Ident if tok.text == "mod" => {
                // `mod name {` opens a module scope; `mod name;` is an
                // out-of-line module and contributes nothing here.
                if let (Some((_, name_tok)), Some((_, open))) = (code.get(i + 1), code.get(i + 2)) {
                    if name_tok.kind == TokenKind::Ident && open.is_punct('{') {
                        stack.push(Frame {
                            kind: ScopeKind::Module(name_tok.text.clone()),
                            fn_slot: None,
                        });
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            TokenKind::Ident if tok.text == "impl" || tok.text == "trait" => {
                // Scan to the opening `{` (or `;` for `trait A = B;`-style
                // aliases), extracting the self-type name: the last
                // angle-depth-0 identifier before the brace, restarting at
                // `for` (`impl Trait for Type`), stopping at `where`.
                let mut name: Option<String> = None;
                let mut angle = 0i32;
                let mut in_where = false;
                let mut j = i + 1;
                let mut open_at: Option<usize> = None;
                while j < code.len() {
                    let (_, t) = code[j];
                    if t.is_punct('{') && angle <= 0 {
                        open_at = Some(j);
                        break;
                    }
                    if t.is_punct(';') && angle <= 0 {
                        break;
                    }
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        // `->` in a bound: the `>` does not close a generic
                        // list.
                        let arrow = j > 0 && code[j - 1].1.is_punct('-');
                        if !arrow && angle > 0 {
                            angle -= 1;
                        }
                    } else if angle == 0 && !in_where && t.kind == TokenKind::Ident {
                        match t.text.as_str() {
                            "for" => name = None,
                            // Idents in the where clause are bounds, not the
                            // self type — keep scanning for the `{` though.
                            "where" => in_where = true,
                            "dyn" | "crate" | "super" | "self" => {}
                            other => name = Some(other.to_string()),
                        }
                    }
                    j += 1;
                }
                match open_at {
                    Some(open) => {
                        stack.push(Frame {
                            kind: ScopeKind::ImplLike(name.unwrap_or_default()),
                            fn_slot: None,
                        });
                        i = open + 1;
                    }
                    None => i = j + 1,
                }
            }
            TokenKind::Ident if tok.text == "fn" => {
                let Some((_, name_tok)) = code.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if name_tok.kind != TokenKind::Ident {
                    // `fn(` — a bare function-pointer type, not an item.
                    i += 1;
                    continue;
                }
                let name = name_tok.text.clone();
                // Find the body `{` (or `;` for trait method declarations)
                // at bracket/paren depth 0 of the signature.
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut open_at: Option<usize> = None;
                while j < code.len() {
                    let (_, t) = code[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct('{') {
                        open_at = Some(j);
                        break;
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                let Some(open) = open_at else {
                    // Declaration without a body: nothing to record.
                    i = j + 1;
                    continue;
                };
                let qual = qualify(&stack, &name);
                let is_pub = leading_bare_pub(&code, i);
                let slot = items.len();
                items.push(FnItem {
                    name,
                    qual,
                    is_pub,
                    sig_start: orig,
                    body_open: code[open].0,
                    body_close: tokens.len().saturating_sub(1),
                    line: tok.line,
                    col: tok.col,
                });
                stack.push(Frame {
                    kind: ScopeKind::Fn,
                    fn_slot: Some(slot),
                });
                i = open + 1;
            }
            _ => i += 1,
        }
    }
    items
}

/// Builds the qualified name for a fn declared under `stack`.
fn qualify(stack: &[Frame], name: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for frame in stack {
        match &frame.kind {
            ScopeKind::Module(m) if !m.is_empty() => parts.push(m),
            ScopeKind::ImplLike(t) if !t.is_empty() => parts.push(t),
            _ => {}
        }
    }
    parts.push(name);
    parts.join("::")
}

/// True when the item at code index `fn_idx` (the `fn` keyword) is preceded
/// by a bare `pub` within its modifier run (`pub const unsafe fn …`).
/// `pub(crate)`/`pub(super)` are restricted and return false.
fn leading_bare_pub(code: &[(usize, &Token)], fn_idx: usize) -> bool {
    // Walk backwards over fn modifiers.
    let mut j = fn_idx;
    while j > 0 {
        let (_, t) = code[j - 1];
        match t.kind {
            TokenKind::Ident
                if matches!(t.text.as_str(), "const" | "unsafe" | "extern" | "async") =>
            {
                j -= 1;
            }
            TokenKind::Str => j -= 1, // extern "C"
            TokenKind::Ident if t.text == "pub" => {
                // Bare only: `pub(` is a restricted visibility.
                return !code.get(j).is_some_and(|(_, n)| n.is_punct('('));
            }
            _ => break,
        }
    }
    // Also the form `pub ( crate ) fn` where the modifier run starts past
    // the closing `)`.
    if j >= 4 {
        let close = code[j - 1].1.is_punct(')');
        let open = code[j - 3].1.is_punct('(');
        let vis = code[j - 4].1.is_ident("pub");
        if close && open && vis {
            return false;
        }
    }
    false
}

/// Finds the function item whose body token range contains `token_idx`
/// (the innermost one, when nested fns are involved).
pub fn enclosing_fn(fns: &[FnItem], token_idx: usize) -> Option<&FnItem> {
    fns.iter()
        .filter(|f| (f.sig_start..=f.body_close).contains(&token_idx))
        .min_by_key(|f| f.body_close - f.sig_start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns_of(src: &str) -> Vec<FnItem> {
        parse_fns(&lex(src))
    }

    #[test]
    fn finds_free_impl_and_module_fns() {
        let src = r#"
            pub fn free() { helper(); }
            fn helper() {}
            impl Matrix {
                pub fn matmul_reference(&self) -> f64 { 0.0 }
                fn private(&self) {}
            }
            mod inner {
                pub fn nested() {}
            }
            impl Display for Matrix {
                fn fmt(&self) {}
            }
        "#;
        let fns = fns_of(src);
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "free",
                "helper",
                "Matrix::matmul_reference",
                "Matrix::private",
                "inner::nested",
                "Matrix::fmt"
            ],
            "{fns:#?}"
        );
        assert!(fns[0].is_pub && !fns[1].is_pub);
        assert!(fns[2].is_pub && !fns[3].is_pub);
    }

    #[test]
    fn restricted_visibility_is_not_pub() {
        let src = "pub(crate) fn a() {} pub fn b() {} pub(super) fn c() {}";
        let fns = fns_of(src);
        let flags: Vec<bool> = fns.iter().map(|f| f.is_pub).collect();
        assert_eq!(flags, [false, true, false], "{fns:#?}");
    }

    #[test]
    fn bodies_are_brace_matched_through_nesting() {
        let src = "fn outer() { if x { y(); } match z { _ => {} } } fn after() {}";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 2);
        let toks = lex(src);
        assert!(toks[fns[0].body_close].is_punct('}'));
        // `after` starts past `outer`'s close.
        assert!(fns[1].sig_start > fns[0].body_close);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_impl_names() {
        let src = r#"
            impl<T: Iterator<Item = f64>> Wrapper<T> where T: Clone {
                fn get(&self) -> f64 { 0.0 }
            }
        "#;
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qual, "Wrapper::get", "{fns:#?}");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(callback: fn() -> usize) -> usize { callback() }";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn nested_fns_resolve_to_the_innermost_enclosing() {
        let src = "fn outer() { fn inner() { deep(); } inner(); }";
        let toks = lex(src);
        let fns = parse_fns(&toks);
        assert_eq!(fns.len(), 2);
        let deep_idx = toks
            .iter()
            .position(|t| t.is_ident("deep"))
            .expect("deep token");
        let found = enclosing_fn(&fns, deep_idx).expect("enclosed");
        assert_eq!(found.name, "inner");
    }
}
