//! An over-approximate intra-workspace call graph.
//!
//! Nodes are the function items of shipping files (libraries, crate roots,
//! binaries — test/bench/example targets never carry library panic
//! contracts). Edges come from call-shaped token patterns inside each
//! function body: `name(`, `Type::name(`, and `.name(`. Resolution is by
//! simple name against every node, narrowed when we can do better:
//!
//! - a `use` import in the calling file pins the name to a crate (`use
//!   pnc_linalg::solve_dense;` → only `pnc-linalg` candidates),
//! - a `Type::name(` path call keeps only candidates whose qualifier ends
//!   with `Type`,
//! - a bare `name(` call prefers same-crate candidates (module-local calls
//!   cannot leave the crate without a `use`, which the first bullet covers),
//! - a `.name(` method call keeps every candidate — trait dispatch and
//!   inherent methods are indistinguishable at token level, and for
//!   reachability analysis over-approximation is the sound direction.
//!
//! The graph exists so `panic-reachability` can answer "which `pub` API can
//! reach this residual panic site, and by what shortest path" — false edges
//! cost a justification comment, missing edges would cost correctness, so
//! every heuristic above errs toward more edges.

use crate::scope::{is_keyword, FnItem};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One function node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the defining file in the slice passed to [`build`].
    pub file: usize,
    /// Index of the item in that file's `fns` vec.
    pub item: usize,
    /// Simple name (copied out for index building).
    pub name: String,
}

/// The call graph over a workspace file set.
#[derive(Debug)]
pub struct CallGraph {
    /// All nodes, ordered by (file index, item index) — deterministic.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[n]` lists callee node ids, sorted and deduped.
    pub edges: Vec<Vec<usize>>,
    /// Node id lookup by (file index, item index).
    by_item: BTreeMap<(usize, usize), usize>,
}

/// Result of the multi-source BFS from the `pub` API surface.
pub struct Reachability {
    /// `dist[n]` = calls from the nearest pub entry (0 = the entry itself);
    /// `None` = unreachable from any pub fn.
    dist: Vec<Option<u32>>,
    /// BFS predecessor (`None` for entry points).
    pred: Vec<Option<usize>>,
}

impl CallGraph {
    /// Node id for the `item_idx`-th fn of `file_idx`, if it is in the graph.
    pub fn node_of(&self, file_idx: usize, item_idx: usize) -> Option<usize> {
        self.by_item.get(&(file_idx, item_idx)).copied()
    }

    /// The [`FnItem`] behind node `n`.
    pub fn item<'a>(&self, files: &'a [SourceFile], n: usize) -> &'a FnItem {
        let node = &self.nodes[n];
        &files[node.file].fns[node.item]
    }

    /// Multi-source shortest paths from every bare-`pub` fn defined in
    /// library code (crate roots and `src/` modules; binaries are entries
    /// for their own `main`-reachable code but carry no API contract, and
    /// `#[cfg(test)]` fns are not API).
    pub fn reach_from_pub(&self, files: &[SourceFile]) -> Reachability {
        let mut dist: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut pred: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let file = &files[node.file];
            let item = &file.fns[node.item];
            let is_lib = matches!(
                file.kind,
                crate::source::FileKind::CrateRoot | crate::source::FileKind::Lib
            );
            if is_lib && item.is_pub && !file.is_test_line(item.line) {
                dist[id] = Some(0);
                queue.push_back(id);
            }
        }
        while let Some(n) = queue.pop_front() {
            let d = dist[n].unwrap_or(0);
            for &m in &self.edges[n] {
                if dist[m].is_none() {
                    dist[m] = Some(d + 1);
                    pred[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        Reachability { dist, pred }
    }
}

impl Reachability {
    /// Distance (in calls) from the nearest pub entry to node `n`.
    pub fn dist(&self, n: usize) -> Option<u32> {
        self.dist.get(n).copied().flatten()
    }

    /// The shortest entry → `n` path as qualified names, e.g.
    /// `["Server::classify", "push", "grow"]`. Empty when unreachable.
    pub fn path(&self, graph: &CallGraph, files: &[SourceFile], n: usize) -> Vec<String> {
        if self.dist(n).is_none() {
            return Vec::new();
        }
        let mut rev = vec![n];
        let mut cur = n;
        while let Some(p) = self.pred.get(cur).copied().flatten() {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.iter()
            .map(|&m| graph.item(files, m).qual.clone())
            .collect()
    }
}

/// Builds the call graph for `files`. Only shipping files contribute nodes;
/// fns wholly inside `#[cfg(test)]` modules are excluded (their calls must
/// not make library code look pub-reachable).
pub fn build(files: &[SourceFile]) -> CallGraph {
    let mut nodes = Vec::new();
    let mut by_item = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !file.kind.is_shipping() {
            continue;
        }
        for (ii, item) in file.fns.iter().enumerate() {
            if file.is_test_line(item.line) {
                continue;
            }
            let id = nodes.len();
            nodes.push(FnNode {
                file: fi,
                item: ii,
                name: item.name.clone(),
            });
            by_item.insert((fi, ii), id);
        }
    }
    for (id, node) in nodes.iter().enumerate() {
        by_name.entry(node.name.as_str()).or_default().push(id);
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (fi, file) in files.iter().enumerate() {
        if !file.kind.is_shipping() {
            continue;
        }
        let imports = use_imports(file);
        let code: Vec<(usize, &crate::lexer::Token)> = file.code_tokens().collect();
        for c in 0..code.len() {
            let (orig, tok) = code[c];
            if tok.kind != crate::lexer::TokenKind::Ident
                || is_keyword(&tok.text)
                || !code.get(c + 1).is_some_and(|(_, n)| n.is_punct('('))
            {
                continue;
            }
            // `name!(` is a macro invocation, not a call — but the lexer
            // splits `!` as its own Punct, so `name !(` has `!` at c+1 and
            // never matches above. `name(` after `fn` is a definition.
            if c > 0 && code[c - 1].1.is_ident("fn") {
                continue;
            }
            let Some(candidates) = by_name.get(tok.text.as_str()) else {
                continue;
            };
            let Some(item_idx) = file
                .fns
                .iter()
                .position(|f| (f.body_open..=f.body_close).contains(&orig))
            else {
                continue; // call outside any fn body (const init, attrs)
            };
            let Some(caller) = by_item.get(&(fi, item_idx)).copied() else {
                continue; // caller is test-only or non-shipping
            };

            // Classify the call shape from the previous tokens.
            let prev = c.checked_sub(1).map(|p| code[p].1);
            let resolved: Vec<usize> = if prev.is_some_and(|p| p.is_punct('.')) {
                // Method call: every same-name node (over-approximate).
                candidates.clone()
            } else if prev.is_some_and(|p| p.is_punct(':'))
                && c >= 3
                && code[c - 2].1.is_punct(':')
                && code[c - 3].1.kind == crate::lexer::TokenKind::Ident
            {
                // `Seg::name(` — keep candidates whose qualifier ends with
                // `Seg::name`; fall back to all if the qualifier is a module
                // path we don't model.
                let seg = &code[c - 3].1.text;
                let want = format!("{seg}::{}", tok.text);
                let narrowed: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let it = &files[nodes[id].file].fns[nodes[id].item];
                        it.qual == want || it.qual.ends_with(&format!("::{want}"))
                    })
                    .collect();
                if narrowed.is_empty() {
                    candidates.clone()
                } else {
                    narrowed
                }
            } else if let Some(src_crate) = imports.get(tok.text.as_str()) {
                // Imported name: pin to the importing crate when it names a
                // workspace crate (`pnc_linalg` → `pnc-linalg`; `crate` /
                // `self` / `super` → the calling file's own crate).
                let want: String = match src_crate.as_str() {
                    "crate" | "self" | "super" => file.crate_name.clone(),
                    other => other.replace('_', "-"),
                };
                let narrowed: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| files[nodes[id].file].crate_name == want)
                    .collect();
                if narrowed.is_empty() {
                    candidates.clone()
                } else {
                    narrowed
                }
            } else {
                // Bare call without an import: module-local, so same-crate
                // candidates when any exist.
                let narrowed: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| files[nodes[id].file].crate_name == file.crate_name)
                    .collect();
                if narrowed.is_empty() {
                    candidates.clone()
                } else {
                    narrowed
                }
            };
            for callee in resolved {
                if callee != caller {
                    edges[caller].push(callee);
                }
            }
        }
    }
    for adj in &mut edges {
        adj.sort_unstable();
        adj.dedup();
    }
    CallGraph {
        nodes,
        edges,
        by_item,
    }
}

/// Extracts `use` imports as terminal-name → first-path-segment, e.g.
/// `use pnc_linalg::{Matrix, solve};` → `Matrix → pnc_linalg`,
/// `solve → pnc_linalg`. `as` renames map the rename.
fn use_imports(file: &SourceFile) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let code: Vec<&crate::lexer::Token> = file.code_tokens().map(|(_, t)| t).collect();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("use") {
            i += 1;
            continue;
        }
        // First path segment.
        let Some(first) = code.get(i + 1) else { break };
        if first.kind != crate::lexer::TokenKind::Ident {
            i += 1;
            continue;
        }
        let root = first.text.clone();
        // Walk to the terminating `;`, recording terminal names: an ident
        // followed by `,`, `}`, `;`, or by `as <rename>`.
        let mut j = i + 2;
        while j < code.len() && !code[j].is_punct(';') {
            let tok = code[j];
            if tok.kind == crate::lexer::TokenKind::Ident && !tok.is_ident("as") {
                let next = code.get(j + 1);
                let terminal = match next {
                    Some(n) => n.is_punct(',') || n.is_punct('}') || n.is_punct(';'),
                    None => true,
                };
                if terminal {
                    map.insert(tok.text.clone(), root.clone());
                } else if next.is_some_and(|n| n.is_ident("as")) {
                    if let Some(rename) = code.get(j + 2) {
                        map.insert(rename.text.clone(), root.clone());
                    }
                    j += 2;
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn file(path: &str, crate_name: &str, kind: FileKind, src: &str) -> SourceFile {
        SourceFile::parse(path, crate_name, kind, src)
    }

    #[test]
    fn bfs_finds_the_shortest_path_from_pub_entries() {
        let f = file(
            "crates/x/src/lib.rs",
            "pnc-x",
            FileKind::CrateRoot,
            r#"
            pub fn entry() { middle(); }
            fn middle() { deep(); }
            fn deep() { sink(); }
            pub fn shortcut() { sink(); }
            fn sink() {}
            fn orphan_helper() { }
            "#,
        );
        let files = [f];
        let graph = build(&files);
        let reach = graph.reach_from_pub(&files);
        let sink_item = files[0]
            .fns
            .iter()
            .position(|f| f.name == "sink")
            .expect("sink");
        let sink = graph.node_of(0, sink_item).expect("node");
        assert_eq!(reach.dist(sink), Some(1), "shortcut is the nearest entry");
        assert_eq!(reach.path(&graph, &files, sink), ["shortcut", "sink"]);

        let orphan_item = files[0]
            .fns
            .iter()
            .position(|f| f.name == "orphan_helper")
            .expect("orphan");
        let orphan = graph.node_of(0, orphan_item).expect("node");
        assert_eq!(reach.dist(orphan), None, "never called, not pub");
    }

    #[test]
    fn use_imports_narrow_cross_crate_calls() {
        let lib_a = file(
            "crates/a/src/lib.rs",
            "pnc-a",
            FileKind::CrateRoot,
            "pub fn helper() { boom(); } fn boom() {}",
        );
        // Same fn name in an unrelated crate, NOT imported by b.
        let lib_c = file(
            "crates/c/src/lib.rs",
            "pnc-c",
            FileKind::CrateRoot,
            "pub fn helper() {}",
        );
        let lib_b = file(
            "crates/b/src/lib.rs",
            "pnc-b",
            FileKind::CrateRoot,
            "use pnc_a::helper;\npub fn run() { helper(); }",
        );
        let files = [lib_a, lib_c, lib_b];
        let graph = build(&files);
        let run_item = files[2]
            .fns
            .iter()
            .position(|f| f.name == "run")
            .expect("run");
        let run = graph.node_of(2, run_item).expect("node");
        let a_helper = graph.node_of(0, 0).expect("a::helper");
        let c_helper = graph.node_of(1, 0).expect("c::helper");
        assert!(
            graph.edges[run].contains(&a_helper),
            "import resolves to pnc-a"
        );
        assert!(
            !graph.edges[run].contains(&c_helper),
            "unimported same-name crate is excluded"
        );
    }

    #[test]
    fn test_mod_fns_are_not_entries_or_nodes() {
        let f = file(
            "crates/x/src/lib.rs",
            "pnc-x",
            FileKind::CrateRoot,
            r#"
            fn quiet() {}
            #[cfg(test)]
            mod tests {
                pub fn noisy() { super::quiet(); }
            }
            "#,
        );
        let files = [f];
        let graph = build(&files);
        assert_eq!(graph.nodes.len(), 1, "only `quiet` is a node");
        let reach = graph.reach_from_pub(&files);
        assert_eq!(reach.dist(0), None, "no pub entry reaches quiet");
    }

    #[test]
    fn qualified_calls_narrow_by_impl_type() {
        let f = file(
            "crates/x/src/lib.rs",
            "pnc-x",
            FileKind::CrateRoot,
            r#"
            struct A; struct B;
            impl A { fn make() {} }
            impl B { fn make() {} }
            pub fn go() { A::make(); }
            "#,
        );
        let files = [f];
        let graph = build(&files);
        let go_item = files[0]
            .fns
            .iter()
            .position(|f| f.name == "go")
            .expect("go");
        let go = graph.node_of(0, go_item).expect("node");
        let a_make = files[0]
            .fns
            .iter()
            .position(|f| f.qual == "A::make")
            .expect("A");
        let b_make = files[0]
            .fns
            .iter()
            .position(|f| f.qual == "B::make")
            .expect("B");
        let a_node = graph.node_of(0, a_make).expect("a node");
        let b_node = graph.node_of(0, b_make).expect("b node");
        assert!(graph.edges[go].contains(&a_node));
        assert!(!graph.edges[go].contains(&b_node));
    }
}
