//! CLI for pnc-lint. See `pnc-lint help` or the crate docs.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use pnc_lint::baseline::{self, Baseline, OracleEntry};
use pnc_lint::diag::Status;
use pnc_lint::fingerprint::fn_fingerprint;
use pnc_lint::structural::REQUIRED_ORACLES;
use pnc_lint::{engine, report, rules, workspace, FileKind};
use pnc_obs::{Counter, Histogram, Span};

/// Files scanned per invocation (satellite of the observability contract:
/// every subsystem reports through pnc-obs, the linter included).
static OBS_FILES: Counter = Counter::new("lint.files");
/// Findings produced (all statuses) per invocation.
static OBS_FINDINGS: Counter = Counter::new("lint.findings");
/// Rules executed per invocation (the registry plus suppression hygiene).
static OBS_RULES_RUN: Counter = Counter::new("lint.rules_run");
/// Wall time of the analyze+report pipeline.
static OBS_DURATION: Histogram = Histogram::new("lint.duration_seconds");

const USAGE: &str = "\
pnc-lint — workspace-invariant static analysis

USAGE:
    pnc-lint <COMMAND> [OPTIONS]

COMMANDS:
    check             Fail (exit 1) on unsuppressed, non-baselined findings
    report            Print every finding, including suppressed/baselined
    update-baseline   Rewrite the ratchet baseline from current findings
    update-oracles    Re-freeze oracle fn hashes (requires --justify)
    rules             List rule ids and one-line summaries
    help              Show this message

OPTIONS:
    --root <DIR>        Workspace root (default: auto-detected from cwd)
    --baseline <PATH>   Baseline file (default: <root>/lint_baseline.json)
    --report <PATH>     JSON report path (default: <root>/artifacts/lint_report.json)
    --no-report         Skip writing the JSON report
    --justify <TEXT>    Justification recorded with update-oracles (mandatory)
";

struct Options {
    command: String,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    report: Option<PathBuf>,
    no_report: bool,
    justify: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        command: String::new(),
        root: None,
        baseline: None,
        report: None,
        no_report: false,
        justify: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" | "--baseline" | "--report" | "--justify" => {
                let value = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                match arg.as_str() {
                    "--root" => opts.root = Some(PathBuf::from(value)),
                    "--baseline" => opts.baseline = Some(PathBuf::from(value)),
                    "--report" => opts.report = Some(PathBuf::from(value)),
                    _ => opts.justify = Some(value.clone()),
                }
            }
            "--no-report" => opts.no_report = true,
            cmd if !cmd.starts_with('-') && opts.command.is_empty() => {
                opts.command = cmd.to_string();
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if opts.command.is_empty() {
        opts.command = "help".to_string();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    match opts.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return Ok(ExitCode::SUCCESS);
        }
        "rules" => {
            for rule in rules::RULES {
                let ratchet = if rule.baselinable { " [baselined]" } else { "" };
                println!("{:<26} {}{}", rule.id, rule.summary, ratchet);
            }
            println!(
                "{:<26} engine hygiene: malformed/unknown/unused suppressions (not suppressible)",
                rules::SUPPRESSION_RULE
            );
            return Ok(ExitCode::SUCCESS);
        }
        "check" | "report" | "update-baseline" | "update-oracles" => {}
        other => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }

    let span = Span::new(&OBS_DURATION);
    let root = match &opts.root {
        Some(root) => root.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            workspace::find_root(&cwd)
                .ok_or("no workspace root found (no ancestor Cargo.toml with [workspace])")?
        }
    };
    let ws = workspace::load(&root).map_err(|e| format!("loading workspace: {e}"))?;
    OBS_FILES.add(ws.files.len() as u64);

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint_baseline.json"));
    let old_baseline = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        Baseline::parse(&text).map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?
    } else {
        Baseline::default()
    };

    if opts.command == "update-oracles" {
        return update_oracles(opts, &ws, old_baseline, &baseline_path);
    }

    let mut findings = engine::analyze(&ws.files, &ws.docs, &old_baseline.oracles);
    OBS_FINDINGS.add(findings.len() as u64);
    OBS_RULES_RUN.add(rules::RULES.len() as u64 + 1);

    if opts.command == "update-baseline" {
        let mut new_baseline = Baseline::from_findings(&findings);
        // The oracle registry is not a ratchet — re-baselining must never
        // silently unfreeze an oracle.
        new_baseline.oracles = old_baseline.oracles;
        std::fs::write(&baseline_path, new_baseline.to_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "baseline written: {} ({} entries, {} findings, {} oracles preserved)",
            baseline_path.display(),
            new_baseline.counts.len(),
            new_baseline.counts.values().sum::<u64>(),
            new_baseline.oracles.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let stale = baseline::apply(&mut findings, &old_baseline);

    if !opts.no_report {
        let report_path = opts
            .report
            .clone()
            .unwrap_or_else(|| root.join("artifacts").join("lint_report.json"));
        if let Some(parent) = report_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
        std::fs::write(&report_path, report::render(&findings, ws.files.len()))
            .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
    }
    drop(span);

    let show_all = opts.command == "report";
    let mut new = 0usize;
    let mut baselined = 0usize;
    let mut suppressed = 0usize;
    for f in &findings {
        match &f.status {
            Status::New => {
                new += 1;
                println!("{f}");
            }
            Status::Baselined => {
                baselined += 1;
                if show_all {
                    println!("{f} (baselined)");
                }
            }
            Status::Suppressed(reason) => {
                suppressed += 1;
                if show_all {
                    println!("{f} (suppressed: {reason})");
                }
            }
        }
    }
    for entry in &stale {
        println!(
            "note: baseline entry `{}` records {} findings but only {} remain — run \
             `cargo run -p pnc-lint -- update-baseline` to ratchet down",
            entry.key, entry.recorded, entry.current
        );
    }
    println!(
        "pnc-lint: {} files, {} new, {} baselined, {} suppressed",
        ws.files.len(),
        new,
        baselined,
        suppressed
    );
    if opts.command == "check" && new > 0 {
        println!(
            "check failed: fix the findings above, suppress with \
             `// pnc-lint: allow(<rule>) — <reason>`, or see docs/LINTS.md"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Recomputes the pinned hash of every registered oracle (seeding the
/// required three if absent) and records the mandatory justification on
/// each entry whose hash actually changed.
fn update_oracles(
    opts: &Options,
    ws: &workspace::Workspace,
    mut baseline: Baseline,
    baseline_path: &std::path::Path,
) -> Result<ExitCode, String> {
    let justify = opts
        .justify
        .as_deref()
        .map(str::trim)
        .filter(|j| !j.is_empty())
        .ok_or(
            "update-oracles requires --justify \"<why the pinned bodies are the trusted \
             oracles>\" — freezes are auditable by design",
        )?;

    // Seed required oracles that are missing from the registry.
    for req in REQUIRED_ORACLES {
        let present = baseline
            .oracles
            .keys()
            .any(|k| k.split_once(' ').map(|(q, _)| q) == Some(*req));
        if present {
            continue;
        }
        let Some((file, _)) = find_oracle_fn(ws, req) else {
            return Err(format!(
                "required oracle `{req}` was not found in any library file; cannot seed it"
            ));
        };
        baseline
            .oracles
            .insert(format!("{req} {}", file), OracleEntry::default());
    }

    let mut frozen = 0usize;
    let mut unchanged = 0usize;
    let mut updated: BTreeMap<String, OracleEntry> = BTreeMap::new();
    for (key, entry) in &baseline.oracles {
        let Some((qual, path)) = key.split_once(' ') else {
            return Err(format!("malformed oracle registry key `{key}`"));
        };
        let Some(file) = ws.files.iter().find(|f| f.path == path) else {
            return Err(format!("oracle `{qual}`: file `{path}` not found"));
        };
        let Some(item) = file.fns.iter().find(|f| f.qual == qual || f.name == qual) else {
            return Err(format!("oracle fn `{qual}` not found in `{path}`"));
        };
        let hash = fn_fingerprint(&file.tokens, item);
        let mut new_entry = entry.clone();
        if entry.hash == hash && !entry.justification.trim().is_empty() {
            unchanged += 1;
        } else {
            new_entry.hash = hash;
            new_entry.justification = justify.to_string();
            frozen += 1;
        }
        updated.insert(key.clone(), new_entry);
    }
    baseline.oracles = updated;
    std::fs::write(baseline_path, baseline.to_json())
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    println!(
        "oracle registry written: {} ({frozen} frozen/re-frozen, {unchanged} unchanged)",
        baseline_path.display()
    );
    Ok(ExitCode::SUCCESS)
}

/// Finds the library file defining a fn whose qualified name is `qual`.
fn find_oracle_fn<'a>(ws: &'a workspace::Workspace, qual: &str) -> Option<(&'a str, u32)> {
    for file in &ws.files {
        if !matches!(file.kind, FileKind::CrateRoot | FileKind::Lib) {
            continue;
        }
        if let Some(item) = file.fns.iter().find(|f| f.qual == qual) {
            return Some((&file.path, item.line));
        }
    }
    None
}
