//! CLI for pnc-lint. See `pnc-lint help` or the crate docs.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use pnc_lint::baseline::{self, Baseline};
use pnc_lint::diag::Status;
use pnc_lint::{engine, report, rules, workspace};

const USAGE: &str = "\
pnc-lint — workspace-invariant static analysis

USAGE:
    pnc-lint <COMMAND> [OPTIONS]

COMMANDS:
    check             Fail (exit 1) on unsuppressed, non-baselined findings
    report            Print every finding, including suppressed/baselined
    update-baseline   Rewrite the ratchet baseline from current findings
    rules             List rule ids and one-line summaries
    help              Show this message

OPTIONS:
    --root <DIR>        Workspace root (default: auto-detected from cwd)
    --baseline <PATH>   Baseline file (default: <root>/lint_baseline.json)
    --report <PATH>     JSON report path (default: <root>/artifacts/lint_report.json)
    --no-report         Skip writing the JSON report
";

struct Options {
    command: String,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    report: Option<PathBuf>,
    no_report: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        command: String::new(),
        root: None,
        baseline: None,
        report: None,
        no_report: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" | "--baseline" | "--report" => {
                let value = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                let path = PathBuf::from(value);
                match arg.as_str() {
                    "--root" => opts.root = Some(path),
                    "--baseline" => opts.baseline = Some(path),
                    _ => opts.report = Some(path),
                }
            }
            "--no-report" => opts.no_report = true,
            cmd if !cmd.starts_with('-') && opts.command.is_empty() => {
                opts.command = cmd.to_string();
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if opts.command.is_empty() {
        opts.command = "help".to_string();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    match opts.command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return Ok(ExitCode::SUCCESS);
        }
        "rules" => {
            for rule in rules::RULES {
                let ratchet = if rule.baselinable { " [baselined]" } else { "" };
                println!("{:<20} {}{}", rule.id, rule.summary, ratchet);
            }
            println!(
                "{:<20} engine hygiene: malformed/unknown/unused suppressions (not suppressible)",
                rules::SUPPRESSION_RULE
            );
            return Ok(ExitCode::SUCCESS);
        }
        "check" | "report" | "update-baseline" => {}
        other => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }

    let root = match &opts.root {
        Some(root) => root.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            workspace::find_root(&cwd)
                .ok_or("no workspace root found (no ancestor Cargo.toml with [workspace])")?
        }
    };
    let ws = workspace::load(&root).map_err(|e| format!("loading workspace: {e}"))?;
    let mut findings = engine::analyze(&ws.files, &ws.docs);

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint_baseline.json"));

    if opts.command == "update-baseline" {
        let new_baseline = Baseline::from_findings(&findings);
        std::fs::write(&baseline_path, new_baseline.to_json())
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "baseline written: {} ({} entries, {} findings)",
            baseline_path.display(),
            new_baseline.counts.len(),
            new_baseline.counts.values().sum::<u64>()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let mut stale = Vec::new();
    if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        let parsed = Baseline::parse(&text)
            .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
        stale = baseline::apply(&mut findings, &parsed);
    }

    if !opts.no_report {
        let report_path = opts
            .report
            .clone()
            .unwrap_or_else(|| root.join("artifacts").join("lint_report.json"));
        if let Some(parent) = report_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
        std::fs::write(&report_path, report::render(&findings, ws.files.len()))
            .map_err(|e| format!("writing {}: {e}", report_path.display()))?;
    }

    let show_all = opts.command == "report";
    let mut new = 0usize;
    let mut baselined = 0usize;
    let mut suppressed = 0usize;
    for f in &findings {
        match &f.status {
            Status::New => {
                new += 1;
                println!("{f}");
            }
            Status::Baselined => {
                baselined += 1;
                if show_all {
                    println!("{f} (baselined)");
                }
            }
            Status::Suppressed(reason) => {
                suppressed += 1;
                if show_all {
                    println!("{f} (suppressed: {reason})");
                }
            }
        }
    }
    for entry in &stale {
        println!(
            "note: baseline entry `{}` records {} findings but only {} remain — run \
             `cargo run -p pnc-lint -- update-baseline` to ratchet down",
            entry.key, entry.recorded, entry.current
        );
    }
    println!(
        "pnc-lint: {} files, {} new, {} baselined, {} suppressed",
        ws.files.len(),
        new,
        baselined,
        suppressed
    );
    if opts.command == "check" && new > 0 {
        println!(
            "check failed: fix the findings above, suppress with \
             `// pnc-lint: allow(<rule>) — <reason>`, or see docs/LINTS.md"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
