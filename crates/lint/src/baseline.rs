//! The ratchet baseline: pre-existing findings of baselinable rules are
//! checked in as per-(rule, file) counts. New findings beyond a file's
//! budget fail `check`; shrinking is always allowed (and encouraged — the
//! tool prints a note when the checked-in counts are stale on the high
//! side). Counts, not line numbers, key the baseline so unrelated edits
//! that shift lines do not invalidate it.
//!
//! Since schema `pnc-lint-baseline/2` the same file also carries the
//! **oracle registry**: content hashes pinning the bodies of the
//! designated oracle fns, each with a mandatory justification recorded the
//! last time the hash changed. Unlike the ratchet counts (which
//! post-process findings), the registry is *input* to the `oracle-freeze`
//! rule.

use std::collections::BTreeMap;

use crate::diag::{Finding, Status};
use crate::rules::RULES;

/// One pinned oracle fn in the registry.
#[derive(Debug, Clone, Default)]
pub struct OracleEntry {
    /// 16-hex-digit normalized-token fingerprint of the fn (see
    /// [`crate::fingerprint`]); empty = registered but not yet frozen.
    pub hash: String,
    /// Why the pinned body is the trusted one (recorded by
    /// `update-oracles --justify`); mandatory.
    pub justification: String,
}

/// Parsed baseline: `(rule, path) -> allowed finding count`, plus the
/// oracle registry.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Allowed counts keyed by `"<rule> <path>"` (BTreeMap for stable
    /// serialization order).
    pub counts: BTreeMap<String, u64>,
    /// Oracle registry keyed by `"<Qual::fn> <path>"`.
    pub oracles: BTreeMap<String, OracleEntry>,
}

/// A baseline entry whose budget exceeds the current findings — the debt
/// shrank and the file should be re-ratcheted.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// `"<rule> <path>"` key.
    pub key: String,
    /// Count recorded in the baseline.
    pub recorded: u64,
    /// Findings actually present now.
    pub current: u64,
}

impl Baseline {
    /// Builds a baseline from current findings: every unsuppressed finding
    /// of a baselinable rule is counted.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts = BTreeMap::new();
        for f in findings {
            if matches!(f.status, Status::Suppressed(_)) {
                continue;
            }
            if RULES.iter().any(|r| r.id == f.rule && r.baselinable) {
                *counts.entry(format!("{} {}", f.rule, f.path)).or_insert(0) += 1;
            }
        }
        Baseline {
            counts,
            oracles: BTreeMap::new(),
        }
    }

    /// Serializes to the checked-in JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"pnc-lint-baseline/2\",\n");
        out.push_str(
            "  \"note\": \"ratchet-only: counts may shrink, never grow; regenerate with \
             `cargo run -p pnc-lint -- update-baseline`. `oracles` pins content hashes of \
             the frozen oracle fns; re-freeze via `update-oracles --justify`\",\n",
        );
        out.push_str("  \"counts\": {");
        for (i, (key, count)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{key}\": {count}"));
        }
        if self.counts.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"oracles\": {");
        for (i, (key, entry)) in self.oracles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{key}\": {{\n      \"hash\": \"{}\",\n      \"justification\": \"{}\"\n    }}",
                entry.hash,
                entry.justification.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        if self.oracles.is_empty() {
            out.push_str("}\n}\n");
        } else {
            out.push_str("\n  }\n}\n");
        }
        out
    }

    /// Parses the JSON format written by [`Baseline::to_json`]. Tolerant of
    /// reordered keys; returns an error string on malformed input.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = json::parse(text)?;
        let json::Value::Object(pairs) = value else {
            return Err("baseline root must be a JSON object".to_string());
        };
        let mut counts = BTreeMap::new();
        let mut oracles = BTreeMap::new();
        for (key, val) in pairs {
            if key == "schema" {
                let json::Value::String(schema) = &val else {
                    return Err("`schema` must be a string".to_string());
                };
                if !schema.starts_with("pnc-lint-baseline") {
                    return Err(format!("unrecognized baseline schema `{schema}`"));
                }
                continue;
            }
            if key == "oracles" {
                let json::Value::Object(entries) = val else {
                    return Err("`oracles` must be an object".to_string());
                };
                for (name, fields) in entries {
                    let json::Value::Object(fields) = fields else {
                        return Err(format!("oracle `{name}` must be an object"));
                    };
                    let mut entry = OracleEntry::default();
                    for (fkey, fval) in fields {
                        let json::Value::String(s) = fval else {
                            return Err(format!("oracle `{name}` field `{fkey}` must be a string"));
                        };
                        match fkey.as_str() {
                            "hash" => entry.hash = s,
                            "justification" => entry.justification = s,
                            _ => {}
                        }
                    }
                    oracles.insert(name, entry);
                }
                continue;
            }
            if key != "counts" {
                continue;
            }
            let json::Value::Object(entries) = val else {
                return Err("`counts` must be an object".to_string());
            };
            for (entry, count) in entries {
                let json::Value::Number(n) = count else {
                    return Err(format!("count for `{entry}` must be a number"));
                };
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!(
                        "count for `{entry}` must be a non-negative integer"
                    ));
                }
                counts.insert(entry, n as u64);
            }
        }
        Ok(Baseline { counts, oracles })
    }
}

/// Marks up to the baselined count of findings per (rule, path) as
/// [`Status::Baselined`] (earliest lines first) and returns the entries
/// whose recorded counts are now stale on the high side.
pub fn apply(findings: &mut [Finding], baseline: &Baseline) -> Vec<StaleEntry> {
    let mut remaining: BTreeMap<String, u64> = baseline.counts.clone();
    for f in findings.iter_mut() {
        if f.status != Status::New {
            continue;
        }
        let key = format!("{} {}", f.rule, f.path);
        if let Some(budget) = remaining.get_mut(&key) {
            if *budget > 0 {
                *budget -= 1;
                f.status = Status::Baselined;
            }
        }
    }
    remaining
        .into_iter()
        .filter(|(_, left)| *left > 0)
        .map(|(key, left)| {
            let recorded = baseline.counts.get(&key).copied().unwrap_or(0);
            StaleEntry {
                key,
                recorded,
                current: recorded - left,
            }
        })
        .collect()
}

/// A just-enough JSON parser for the baseline file: objects, strings with
/// escapes, and numbers — exactly the grammar [`Baseline::to_json`] emits.
mod json {
    /// Parsed JSON value.
    #[derive(Debug, Clone)]
    pub enum Value {
        /// JSON object as ordered pairs.
        Object(Vec<(String, Value)>),
        /// JSON string (escapes cooked).
        String(String),
        /// JSON number.
        Number(f64),
    }

    /// Parses `text` as a single JSON value.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            chars: text.chars().peekable(),
        };
        let v = p.value()?;
        p.skip_ws();
        if p.chars.peek().is_some() {
            return Err("trailing content after JSON value".to_string());
        }
        Ok(v)
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.chars.peek().is_some_and(|c| c.is_whitespace()) {
                self.chars.next();
            }
        }

        fn expect_char(&mut self, c: char) -> Result<(), String> {
            self.skip_ws();
            match self.chars.next() {
                Some(got) if got == c => Ok(()),
                other => Err(format!("expected `{c}`, found {other:?}")),
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.chars.peek() {
                Some('{') => self.object(),
                Some('"') => Ok(Value::String(self.string()?)),
                Some(_) => self.number(),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect_char('{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.chars.peek() == Some(&'}') {
                self.chars.next();
                return Ok(Value::Object(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect_char(':')?;
                let val = self.value()?;
                pairs.push((key, val));
                self.skip_ws();
                match self.chars.next() {
                    Some(',') => continue,
                    Some('}') => break,
                    other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                }
            }
            Ok(Value::Object(pairs))
        }

        fn string(&mut self) -> Result<String, String> {
            self.skip_ws();
            if self.chars.next() != Some('"') {
                return Err("expected string".to_string());
            }
            let mut out = String::new();
            loop {
                match self.chars.next() {
                    Some('"') => break,
                    Some('\\') => match self.chars.next() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self
                                    .chars
                                    .next()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        Some(other) => out.push(other),
                        None => return Err("unterminated string escape".to_string()),
                    },
                    Some(c) => out.push(c),
                    None => return Err("unterminated string".to_string()),
                }
            }
            Ok(out)
        }

        fn number(&mut self) -> Result<Value, String> {
            let mut text = String::new();
            while let Some(&c) = self.chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    text.push(c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| format!("malformed number `{text}`"))
        }
    }
}
