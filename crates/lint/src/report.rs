//! The machine-readable JSON report (`artifacts/lint_report.json`).

use crate::diag::{Finding, Status};

/// Escapes `s` for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report. `files_scanned` is the number of source files
/// analyzed; findings must already be in final (post-baseline) state.
pub fn render(findings: &[Finding], files_scanned: usize) -> String {
    let total = findings.len();
    let new = findings.iter().filter(|f| f.status == Status::New).count();
    let baselined = findings
        .iter()
        .filter(|f| f.status == Status::Baselined)
        .count();
    let suppressed = total - new - baselined;
    // Suppression hygiene rides along with the registered rules.
    let rules_run = crate::rules::RULES.len() + 1;

    let mut out = String::from("{\n  \"schema\": \"pnc-lint-report/2\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"rules_run\": {rules_run},\n"));
    out.push_str(&format!(
        "  \"summary\": {{\"total\": {total}, \"new\": {new}, \"baselined\": {baselined}, \
         \"suppressed\": {suppressed}}},\n"
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (status, reason) = match &f.status {
            Status::New => ("new", None),
            Status::Baselined => ("baselined", None),
            Status::Suppressed(reason) => ("suppressed", Some(reason.as_str())),
        };
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"status\": \"{}\", \"message\": \"{}\"",
            escape(f.rule),
            escape(&f.path),
            f.line,
            f.col,
            status,
            escape(&f.message),
        ));
        if let Some(reason) = reason {
            out.push_str(&format!(", \"reason\": \"{}\"", escape(reason)));
        }
        out.push('}');
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}
