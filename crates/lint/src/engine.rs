//! Ties the rules together: runs them over a set of files and documents,
//! applies inline suppressions, and reports suppression hygiene.

use crate::baseline::OracleEntry;
use crate::diag::{sort_findings, Finding, Status};
use crate::docs::Docs;
use crate::rules::{self, SUPPRESSION_RULE};
use crate::source::SourceFile;
use crate::structural;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Runs every rule over `files` + `docs`, applies suppressions, and returns
/// the findings in stable order. `oracles` is the registry section of the
/// baseline (input to `oracle-freeze`); the ratchet *counts* are still a
/// separate post-processing step ([`crate::baseline::apply`]) so callers
/// can inspect pre-baseline state.
pub fn analyze(
    files: &[SourceFile],
    docs: &Docs,
    oracles: &BTreeMap<String, OracleEntry>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        findings.extend(rules::check_file(file));
    }
    findings.extend(rules::check_workspace(files, docs));
    findings.extend(structural::check_structural(files, oracles));

    // Apply inline suppressions: a suppression covers findings of its rule
    // on its own line and the line directly below — and when suppressions
    // for different rules stack on consecutive lines (one site triggering
    // several rules), the whole stack covers the first code line after it.
    let mut used: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.suppressions.len()])
        .collect();
    let sup_lines: Vec<BTreeSet<u32>> = files
        .iter()
        .map(|f| f.suppressions.iter().map(|s| s.line).collect())
        .collect();
    for finding in &mut findings {
        let Some((fi, file)) = files
            .iter()
            .enumerate()
            .find(|(_, f)| f.path == finding.path)
        else {
            continue;
        };
        for (si, sup) in file.suppressions.iter().enumerate() {
            if sup.rule != finding.rule {
                continue;
            }
            let mut stack_end = sup.line;
            while sup_lines[fi].contains(&(stack_end + 1)) {
                stack_end += 1;
            }
            if finding.line >= sup.line && finding.line <= stack_end + 1 {
                finding.status = Status::Suppressed(sup.reason.clone());
                used[fi][si] = true;
                break;
            }
        }
    }

    // Suppression hygiene: malformed comments, unknown rule ids, and
    // suppressions that no longer silence anything must all be cleaned up.
    for (fi, file) in files.iter().enumerate() {
        for bad in &file.bad_suppressions {
            findings.push(Finding::new(
                SUPPRESSION_RULE,
                &file.path,
                bad.line,
                bad.col,
                bad.message.clone(),
            ));
        }
        for (si, sup) in file.suppressions.iter().enumerate() {
            if !rules::is_known_rule(&sup.rule) {
                findings.push(Finding::new(
                    SUPPRESSION_RULE,
                    &file.path,
                    sup.line,
                    sup.col,
                    format!(
                        "suppression references unknown rule `{}` (see `pnc-lint rules`)",
                        sup.rule
                    ),
                ));
            } else if !used[fi][si] {
                findings.push(Finding::new(
                    SUPPRESSION_RULE,
                    &file.path,
                    sup.line,
                    sup.col,
                    format!(
                        "unused suppression for `{}` — the finding it silenced is gone; \
                         delete the comment",
                        sup.rule
                    ),
                ));
            }
        }
    }

    sort_findings(&mut findings);
    findings
}
