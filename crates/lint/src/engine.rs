//! Ties the rules together: runs them over a set of files and documents,
//! applies inline suppressions, and reports suppression hygiene.

use crate::diag::{sort_findings, Finding, Status};
use crate::docs::Docs;
use crate::rules::{self, SUPPRESSION_RULE};
use crate::source::SourceFile;

/// Runs every rule over `files` + `docs`, applies suppressions, and returns
/// the findings in stable order. Baseline application is a separate step
/// ([`crate::baseline::apply`]) so callers can inspect pre-baseline state.
pub fn analyze(files: &[SourceFile], docs: &Docs) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        findings.extend(rules::check_file(file));
    }
    findings.extend(rules::check_workspace(files, docs));

    // Apply inline suppressions: a suppression covers findings of its rule
    // on its own line or the line directly below.
    let mut used: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.suppressions.len()])
        .collect();
    for finding in &mut findings {
        let Some((fi, file)) = files
            .iter()
            .enumerate()
            .find(|(_, f)| f.path == finding.path)
        else {
            continue;
        };
        for (si, sup) in file.suppressions.iter().enumerate() {
            if sup.rule == finding.rule
                && (sup.line == finding.line || sup.line + 1 == finding.line)
            {
                finding.status = Status::Suppressed(sup.reason.clone());
                used[fi][si] = true;
                break;
            }
        }
    }

    // Suppression hygiene: malformed comments, unknown rule ids, and
    // suppressions that no longer silence anything must all be cleaned up.
    for (fi, file) in files.iter().enumerate() {
        for bad in &file.bad_suppressions {
            findings.push(Finding::new(
                SUPPRESSION_RULE,
                &file.path,
                bad.line,
                bad.col,
                bad.message.clone(),
            ));
        }
        for (si, sup) in file.suppressions.iter().enumerate() {
            if !rules::is_known_rule(&sup.rule) {
                findings.push(Finding::new(
                    SUPPRESSION_RULE,
                    &file.path,
                    sup.line,
                    sup.col,
                    format!(
                        "suppression references unknown rule `{}` (see `pnc-lint rules`)",
                        sup.rule
                    ),
                ));
            } else if !used[fi][si] {
                findings.push(Finding::new(
                    SUPPRESSION_RULE,
                    &file.path,
                    sup.line,
                    sup.col,
                    format!(
                        "unused suppression for `{}` — the finding it silenced is gone; \
                         delete the comment",
                        sup.rule
                    ),
                ));
            }
        }
    }

    sort_findings(&mut findings);
    findings
}
