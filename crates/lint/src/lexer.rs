//! A small token-level lexer for Rust source.
//!
//! This is not a full Rust lexer — it is exactly the subset the lint rules
//! need to be *sound on real source*: it never confuses code with the inside
//! of a comment, string, raw string, byte string, char literal, or lifetime.
//! Within code it produces identifiers, numbers, and single-character
//! punctuation with 1-based line/column positions. Comments are kept as
//! tokens (the suppression syntax lives in them); rules that only care about
//! code iterate with [`Token::is_code`].
//!
//! Multi-character operators (`::`, `->`, …) are deliberately left as runs of
//! single-character punctuation tokens: rules match them as adjacent tokens,
//! which keeps the lexer small and the matching explicit.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, without the `r#`).
    Ident,
    /// A lifetime such as `'a` (text excludes the leading `'`).
    Lifetime,
    /// Integer or float literal (text as written).
    Number,
    /// String literal of any flavor (`"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`); the token text is the *content*, with simple escapes
    /// (`\\`, `\"`, `\n`, `\t`, `\r`, `\0`, `\'`) cooked for plain strings.
    Str,
    /// Character or byte literal; text is the raw content between quotes.
    Char,
    /// `// …` comment (text includes the `//`); doc comments too.
    LineComment,
    /// `/* … */` comment (text includes delimiters); handles nesting.
    BlockComment,
    /// A single punctuation character; text is that one character.
    Punct,
}

/// One lexed token with its position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what each kind stores).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for tokens that are part of the program, i.e. not comments.
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this is a [`TokenKind::Punct`] equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True if this is a [`TokenKind::Ident`] equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens. Never fails: unterminated constructs simply run
/// to end of input, and unrecognized bytes become [`TokenKind::Punct`] —
/// the analyzer must not crash on the code it is judging.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' => {
                cur.bump();
                match cur.peek() {
                    Some('/') => out.push(lex_line_comment(&mut cur, line, col)),
                    Some('*') => out.push(lex_block_comment(&mut cur, line, col)),
                    _ => out.push(punct('/', line, col)),
                }
            }
            '"' => {
                cur.bump();
                out.push(lex_string(&mut cur, line, col))
            }
            '\'' => {
                cur.bump();
                out.push(lex_quote(&mut cur, line, col))
            }
            'r' | 'b' => out.push(lex_prefixed(&mut cur, line, col)),
            c if is_ident_start(c) => out.push(lex_ident(&mut cur, line, col)),
            c if c.is_ascii_digit() => out.push(lex_number(&mut cur, line, col)),
            c => {
                cur.bump();
                out.push(punct(c, line, col));
            }
        }
    }
    out
}

fn punct(c: char, line: u32, col: u32) -> Token {
    Token {
        kind: TokenKind::Punct,
        text: c.to_string(),
        line,
        col,
    }
}

fn lex_line_comment(cur: &mut Cursor, line: u32, col: u32) -> Token {
    // The leading '/' is consumed; the peeked one is not yet.
    let mut text = String::from("/");
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokenKind::LineComment,
        text,
        line,
        col,
    }
}

fn lex_block_comment(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::from("/");
    if let Some(star) = cur.bump() {
        text.push(star);
    }
    let mut depth = 1u32;
    let mut prev = '\0';
    while depth > 0 {
        let Some(c) = cur.bump() else { break };
        text.push(c);
        match (prev, c) {
            ('/', '*') => {
                depth += 1;
                prev = '\0';
            }
            ('*', '/') => {
                depth -= 1;
                prev = '\0';
            }
            _ => prev = c,
        }
    }
    Token {
        kind: TokenKind::BlockComment,
        text,
        line,
        col,
    }
}

/// Lexes a plain `"…"` string whose opening quote is already consumed.
fn lex_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => match cur.bump() {
                Some('n') => text.push('\n'),
                Some('t') => text.push('\t'),
                Some('r') => text.push('\r'),
                Some('0') => text.push('\0'),
                Some(other) => text.push(other), // \\ \" \' and anything exotic
                None => break,
            },
            c => text.push(c),
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// Lexes a `'…'` char literal or a `'ident` lifetime; the `'` is consumed.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    match cur.peek() {
        // Escape: definitely a char literal like '\n'.
        Some('\\') => {
            let mut text = String::new();
            if let Some(backslash) = cur.bump() {
                text.push(backslash);
            }
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            // Consume up to the closing quote (covers '\u{…}').
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            // Could be 'a' (char) or 'a (lifetime): read the ident run, then
            // a closing quote decides.
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
                Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                    col,
                }
            } else {
                Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                }
            }
        }
        // 'x' for non-ident x, e.g. '+' or ' '.
        Some(_) => {
            let mut text = String::new();
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            }
        }
        None => punct('\'', line, col),
    }
}

/// Handles `r`/`b` starts: raw strings, byte strings, or plain identifiers.
fn lex_prefixed(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let first = cur.bump().unwrap_or('r');
    let mut prefix = String::new();
    prefix.push(first);
    // br / rb? Only `br` is real Rust; accept the run of prefix letters.
    if first == 'b' && cur.peek() == Some('r') {
        prefix.push(cur.bump().unwrap_or('r'));
    }
    match cur.peek() {
        Some('"') if prefix != "b" => {
            cur.bump();
            lex_raw_string(cur, 0, line, col)
        }
        Some('"') => {
            // b"…" — byte string, escapes like a plain string.
            cur.bump();
            lex_string(cur, line, col)
        }
        Some('#') if prefix.ends_with('r') => {
            let mut hashes = 0usize;
            while cur.peek() == Some('#') {
                hashes += 1;
                cur.bump();
            }
            if cur.peek() == Some('"') {
                cur.bump();
                lex_raw_string(cur, hashes, line, col)
            } else {
                // `r#ident` raw identifier: hashes==1 and an ident follows.
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                }
            }
        }
        Some('\'') if prefix == "b" => {
            cur.bump();
            lex_quote(cur, line, col)
        }
        _ => {
            // Just an identifier starting with r/b.
            let mut text = prefix;
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            }
        }
    }
}

/// Lexes a raw string body after the opening quote; closes on `"` followed
/// by `hashes` `#` characters.
fn lex_raw_string(cur: &mut Cursor, hashes: usize, line: u32, col: u32) -> Token {
    let mut text = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            // Tentatively match the closing hashes.
            let mut seen = 0usize;
            while seen < hashes {
                if cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                } else {
                    text.push('"');
                    for _ in 0..seen {
                        text.push('#');
                    }
                    continue 'outer;
                }
            }
            break;
        }
        text.push(c);
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

fn lex_ident(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line,
        col,
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    // Integer part (also covers 0x…, 1_000, and type suffixes like 10usize
    // via the alphanumeric continue set).
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part only when '.' is followed by a digit — keeps `1..n`
    // ranges and `1.0_f64.sin()` method calls lexing correctly.
    if cur.peek() == Some('.') {
        let mut lookahead = cur.chars.clone();
        lookahead.next();
        if lookahead.peek().is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            cur.bump();
            while let Some(c) = cur.peek() {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Exponent sign: `1e-3` lexes the `e` above; pull in a signed exponent.
    if (text.ends_with('e') || text.ends_with('E'))
        && matches!(cur.peek(), Some('+') | Some('-'))
        && text.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        if let Some(sign) = cur.bump() {
            text.push(sign);
        }
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    Token {
        kind: TokenKind::Number,
        text,
        line,
        col,
    }
}
