//! The four structural rules, built on the scope parser
//! ([`crate::scope`]), content fingerprints ([`crate::fingerprint`]), and
//! workspace call graph ([`crate::callgraph`]).
//!
//! Where the flat rules in [`crate::rules`] match token patterns on single
//! lines, these reason about *extents*: which function a token belongs to,
//! how far a lock guard's scope runs, which `pub` API transitively reaches
//! a panic site. They stay over-approximate in the same spirit — a false
//! positive costs one justified suppression, a false negative costs a
//! silently broken contract.

use crate::baseline::OracleEntry;
use crate::callgraph;
use crate::diag::Finding;
use crate::fingerprint::fn_fingerprint;
use crate::lexer::{Token, TokenKind};
use crate::scope::is_keyword;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// The functions the oracle registry must always pin: the cross-backend
/// agreement oracles designated in docs/SOLVERS.md and DESIGN.md, plus the
/// streaming-equivalence anchors of DESIGN.md §17 — the batch dataset
/// builder the streamed build must reproduce bit-identically, the shared
/// per-point characterization kernel, and the two store codecs whose byte
/// layout the on-disk format version pins. The registry may pin more; it
/// may not pin fewer.
pub const REQUIRED_ORACLES: &[&str] = &[
    "Matrix::matmul_reference",
    "Graph::backward_reference",
    "DcSolver::newton_dense",
    "build_dataset_opts",
    "characterize_point",
    "StoreMeta::encode",
    "StoreRecord::encode",
];

/// Crates where `[]` indexing and panicking slice methods count as panic
/// sites for reachability: their shipping code sits behind
/// externally-driven input (wire bytes, metric values), where an
/// out-of-bounds is a request-triggerable abort. Numeric crates are exempt
/// — their indices are loop-bounded by construction and covered by
/// property tests — as is pnc-lint itself (a tool crash is a loud CI
/// failure, the same failure mode as a binary).
const INDEX_SITE_CRATES: &[&str] = &["pnc-serve", "pnc-obs"];

/// Slice methods that panic on bad arguments, counted as sites in
/// [`INDEX_SITE_CRATES`].
const PANICKY_SLICE_METHODS: &[&str] = &["split_at", "split_at_mut", "copy_from_slice"];

/// Crates the lock-across-blocking rule patrols: worker pools and
/// connection handlers, where a guard held across a blocking call lets one
/// stalled peer wedge every thread contending for the lock.
const LOCK_RULE_CRATES: &[&str] = &["pnc-serve"];

/// Method names that block on I/O, a peer, or a thread.
const BLOCKING_IDENTS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "read_frame",
    "write_frame",
    "connect",
    "accept",
    "incoming",
    "join",
    "recv",
    "recv_timeout",
    "send",
    "send_timeout",
];

/// Chain terminators that consume a parallel iterator without an implicit
/// unordered reduction (so a `let` binding containing one is *not* a live
/// parallel chain afterwards).
const PAR_TERMINAL_IDENTS: &[&str] = &[
    "collect",
    "for_each",
    "try_for_each",
    "count",
    "ordered_par_map",
    "try_ordered_par_map",
    "max",
    "min",
    "any",
    "all",
    "position",
    "find_first",
    "find_any",
];

/// Runs every structural rule. `oracles` is the registry section of the
/// baseline file (rule input, unlike the ratchet counts which post-process
/// findings).
pub fn check_structural(
    files: &[SourceFile],
    oracles: &BTreeMap<String, OracleEntry>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    oracle_freeze(files, oracles, &mut findings);
    panic_reachability(files, &mut findings);
    for file in files {
        lock_across_blocking(file, &mut findings);
        unordered_float_reduction(file, &mut findings);
    }
    findings
}

// ---------------------------------------------------------------- oracle-freeze

fn oracle_freeze(
    files: &[SourceFile],
    oracles: &BTreeMap<String, OracleEntry>,
    out: &mut Vec<Finding>,
) {
    const RULE: &str = "oracle-freeze";
    for (key, entry) in oracles {
        let Some((qual, path)) = key.split_once(' ') else {
            out.push(Finding::new(
                RULE,
                "lint_baseline.json",
                1,
                1,
                format!("malformed oracle registry key `{key}` (expected `<Qual::fn> <path>`)"),
            ));
            continue;
        };
        let Some(file) = files.iter().find(|f| f.path == path) else {
            out.push(Finding::new(
                RULE,
                path,
                1,
                1,
                format!(
                    "oracle registry pins `{qual}` in this file, but the file is gone — \
                     restore it or remove the registry entry with a justification"
                ),
            ));
            continue;
        };
        let Some(item) = file.fns.iter().find(|f| f.qual == qual || f.name == qual) else {
            out.push(Finding::new(
                RULE,
                path,
                1,
                1,
                format!(
                    "frozen oracle fn `{qual}` no longer exists in this file (renamed or \
                     deleted?); oracles may only change via `update-oracles --justify`"
                ),
            ));
            continue;
        };
        if entry.justification.trim().is_empty() {
            out.push(Finding::new(
                RULE,
                path,
                item.line,
                item.col,
                format!(
                    "oracle registry entry for `{qual}` has no justification; every freeze \
                     (and re-freeze) must say why the pinned body is the trusted one"
                ),
            ));
        }
        let actual = fn_fingerprint(&file.tokens, item);
        if entry.hash.is_empty() {
            out.push(Finding::new(
                RULE,
                path,
                item.line,
                item.col,
                format!(
                    "oracle `{qual}` is registered but has no pinned hash; run \
                     `cargo run -p pnc-lint -- update-oracles --justify \"<why>\"`"
                ),
            ));
        } else if actual != entry.hash {
            out.push(Finding::new(
                RULE,
                path,
                item.line,
                item.col,
                format!(
                    "frozen oracle fn `{qual}` was edited: content hash is {actual}, registry \
                     pins {}; if the new body is the intended oracle, re-freeze with \
                     `update-oracles --justify \"<why the change preserves the contract>\"`",
                    entry.hash
                ),
            ));
        }
    }
    for req in REQUIRED_ORACLES {
        let registered = oracles
            .keys()
            .any(|k| k.split_once(' ').map(|(q, _)| q) == Some(req));
        if !registered {
            out.push(Finding::new(
                RULE,
                "lint_baseline.json",
                1,
                1,
                format!(
                    "required oracle `{req}` is not pinned in the registry; run \
                     `update-oracles --justify \"<why>\"` to freeze it"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------- panic-reachability

/// One residual panic site found in library code.
struct PanicSite {
    file: usize,
    token: usize,
    what: String,
}

fn panic_reachability(files: &[SourceFile], out: &mut Vec<Finding>) {
    const RULE: &str = "panic-reachability";
    let graph = callgraph::build(files);
    let reach = graph.reach_from_pub(files);

    let mut sites: Vec<PanicSite> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !matches!(file.kind, FileKind::CrateRoot | FileKind::Lib) {
            continue;
        }
        let index_sites = INDEX_SITE_CRATES.contains(&file.crate_name.as_str());
        let code: Vec<(usize, &Token)> = file.code_tokens().collect();
        for (c, &(orig, tok)) in code.iter().enumerate() {
            if file.is_test_line(tok.line) {
                continue;
            }
            match tok.kind {
                TokenKind::Ident => {
                    let method_call = matches!(tok.text.as_str(), "unwrap" | "expect")
                        && c > 0
                        && code[c - 1].1.is_punct('.');
                    let macro_call = matches!(
                        tok.text.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    ) && code.get(c + 1).is_some_and(|(_, t)| t.is_punct('!'));
                    let slice_method = index_sites
                        && PANICKY_SLICE_METHODS.contains(&tok.text.as_str())
                        && c > 0
                        && code[c - 1].1.is_punct('.')
                        && code.get(c + 1).is_some_and(|(_, t)| t.is_punct('('));
                    if method_call || slice_method {
                        sites.push(PanicSite {
                            file: fi,
                            token: orig,
                            what: format!(".{}()", tok.text),
                        });
                    } else if macro_call {
                        sites.push(PanicSite {
                            file: fi,
                            token: orig,
                            what: format!("{}!", tok.text),
                        });
                    }
                }
                TokenKind::Punct if index_sites && tok.is_punct('[') && c > 0 => {
                    // `expr[...]` indexing: `[` directly after an index-able
                    // expression tail — an identifier (not a keyword) or a
                    // closing `)`/`]`. Everything else (`#[attr]`, `vec![`,
                    // `[T; N]` types, array literals after `=`/`(`) is not
                    // an Index::index call.
                    let prev = code[c - 1].1;
                    let indexes = match prev.kind {
                        TokenKind::Ident => !is_keyword(&prev.text),
                        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                        _ => false,
                    };
                    if indexes {
                        sites.push(PanicSite {
                            file: fi,
                            token: orig,
                            what: "`[]` indexing".to_string(),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    for site in &sites {
        let file = &files[site.file];
        let Some(item_idx) = file
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| (f.sig_start..=f.body_close).contains(&site.token))
            .min_by_key(|(_, f)| f.body_close - f.sig_start)
            .map(|(i, _)| i)
        else {
            continue; // site outside any fn (const initializer) — compile-time
        };
        let Some(node) = graph.node_of(site.file, item_idx) else {
            continue; // enclosing fn is test-only
        };
        let Some(dist) = reach.dist(node) else {
            continue; // not reachable from any pub API
        };
        let tok = &file.tokens[site.token];
        let path = reach.path(&graph, files, node);
        let route = if dist == 0 {
            format!("inside pub fn `{}` itself", path.join(" -> "))
        } else {
            let unit = if dist == 1 { "call" } else { "calls" };
            format!("via `{}` ({dist} {unit})", path.join(" -> "))
        };
        out.push(Finding::new(
            RULE,
            &file.path,
            tok.line,
            tok.col,
            format!(
                "{} is reachable from the pub API {route}; return a Result, bound the \
                 access, or suppress with the invariant that rules the panic out",
                site.what
            ),
        ));
    }
}

// -------------------------------------------------------- lock-across-blocking

/// A live lock-guard binding.
struct Guard {
    name: String,
    depth: i32,
    line: u32,
}

fn lock_across_blocking(file: &SourceFile, out: &mut Vec<Finding>) {
    const RULE: &str = "lock-across-blocking";
    if !LOCK_RULE_CRATES.contains(&file.crate_name.as_str()) || !file.kind.is_shipping() {
        return;
    }
    let code: Vec<(usize, &Token)> = file.code_tokens().collect();
    for item in &file.fns {
        // Code-token indices of the body interior.
        let body: Vec<usize> = (0..code.len())
            .filter(|&c| code[c].0 > item.body_open && code[c].0 < item.body_close)
            .collect();
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0i32;
        let mut b = 0usize;
        while b < body.len() {
            let c = body[b];
            let tok = code[c].1;
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            } else if tok.is_ident("let") {
                // `let [mut] name = … .lock( … ) … ;` at this depth starts a
                // guard; any other `let name` re-binding kills a prior guard
                // of the same name.
                let mut n = b + 1;
                if n < body.len() && code[body[n]].1.is_ident("mut") {
                    n += 1;
                }
                if n < body.len() && code[body[n]].1.kind == TokenKind::Ident {
                    let name = code[body[n]].1.text.clone();
                    if stmt_locks(&code, &body, n + 1) {
                        guards.retain(|g| g.name != name);
                        guards.push(Guard {
                            name,
                            depth,
                            line: tok.line,
                        });
                    } else {
                        guards.retain(|g| g.name != name);
                    }
                }
            } else if tok.is_ident("drop")
                && body.get(b + 1).is_some_and(|&n| code[n].1.is_punct('('))
                && body
                    .get(b + 2)
                    .is_some_and(|&n| code[n].1.kind == TokenKind::Ident)
                && body.get(b + 3).is_some_and(|&n| code[n].1.is_punct(')'))
            {
                let name = &code[body[b + 2]].1.text;
                guards.retain(|g| &g.name != name);
                b += 3;
            } else if tok.kind == TokenKind::Ident
                && BLOCKING_IDENTS.contains(&tok.text.as_str())
                && !file.is_test_line(tok.line)
                && b > 0
                && (code[body[b - 1]].1.is_punct('.') || code[body[b - 1]].1.is_punct(':'))
                && body.get(b + 1).is_some_and(|&n| code[n].1.is_punct('('))
            {
                let args = call_args(&code, &body, b + 1);
                for g in &guards {
                    // A guard passed *into* the call is being consumed
                    // (`condvar.wait(state)` takes it by value) — that is
                    // the correct idiom, not a hold-across-block.
                    if args.iter().any(|a| a == &g.name) {
                        continue;
                    }
                    out.push(Finding::new(
                        RULE,
                        &file.path,
                        tok.line,
                        tok.col,
                        format!(
                            "lock guard `{}` (taken on line {}) is live across blocking \
                             `.{}()`; a stalled peer holds up every thread contending for \
                             the mutex — drop the guard or narrow its scope first",
                            g.name, g.line, tok.text
                        ),
                    ));
                }
            }
            b += 1;
        }
    }
}

/// True when the statement starting at body position `start` (just past
/// `let [mut] name`) contains `.lock(` at its own brace depth — i.e. the
/// binding *is* the guard, not a block expression that locked internally.
fn stmt_locks(code: &[(usize, &Token)], body: &[usize], start: usize) -> bool {
    let mut depth = 0i32;
    let mut b = start;
    while b < body.len() {
        let tok = code[body[b]].1;
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 && tok.is_punct(';') {
            return false;
        } else if depth == 0
            && tok.is_ident("lock")
            && b > 0
            && code[body[b - 1]].1.is_punct('.')
            && body.get(b + 1).is_some_and(|&n| code[n].1.is_punct('('))
        {
            return true;
        }
        b += 1;
    }
    false
}

/// Identifier tokens inside the call whose `(` sits at body position
/// `open_b`.
fn call_args(code: &[(usize, &Token)], body: &[usize], open_b: usize) -> Vec<String> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut b = open_b;
    while b < body.len() {
        let tok = code[body[b]].1;
        if tok.is_punct('(') {
            depth += 1;
        } else if tok.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tok.kind == TokenKind::Ident && !is_keyword(&tok.text) {
            args.push(tok.text.clone());
        }
        b += 1;
    }
    args
}

// --------------------------------------------------- unordered-float-reduction

fn unordered_float_reduction(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.kind.is_shipping() || file.path == crate::rules::ORDERED_HELPER_FILE {
        return;
    }
    let code: Vec<(usize, &Token)> = file.code_tokens().collect();
    for item in &file.fns {
        let body: Vec<usize> = (0..code.len())
            .filter(|&c| code[c].0 > item.body_open && code[c].0 < item.body_close)
            .collect();
        deferred_par_reductions(file, &code, &body, out);
        captured_accumulators(file, &code, &body, out);
    }
}

/// Part (a): a `let chain = xs.par_iter().map(…);` binding (no terminal
/// consumer in the statement) later reduced with `chain.sum()` — the
/// line-local `ordered-reduction` rule cannot see the two lines together.
fn deferred_par_reductions(
    file: &SourceFile,
    code: &[(usize, &Token)],
    body: &[usize],
    out: &mut Vec<Finding>,
) {
    // name -> declaration depth of still-live deferred parallel chains.
    let mut live: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut b = 0usize;
    while b < body.len() {
        let tok = code[body[b]].1;
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            live.retain(|&(_, d)| d <= depth);
        } else if tok.is_ident("let") {
            let mut n = b + 1;
            if n < body.len() && code[body[n]].1.is_ident("mut") {
                n += 1;
            }
            if n < body.len() && code[body[n]].1.kind == TokenKind::Ident {
                let name = code[body[n]].1.text.clone();
                let (has_par, has_terminal, stmt_end) = scan_stmt(code, body, n + 1);
                live.retain(|(l, _)| l != &name);
                if has_par && !has_terminal && !file.is_test_line(tok.line) {
                    live.push((name, depth));
                }
                b = stmt_end;
                continue;
            }
        } else if tok.kind == TokenKind::Ident && !file.is_test_line(tok.line) {
            let reduced = live.iter().any(|(l, _)| l == &tok.text)
                && body.get(b + 1).is_some_and(|&n| code[n].1.is_punct('.'))
                && body.get(b + 2).is_some_and(|&n| {
                    let t = code[n].1;
                    t.kind == TokenKind::Ident
                        && crate::rules::REDUCTION_IDENTS.contains(&t.text.as_str())
                });
            if reduced {
                let red = code[body[b + 2]].1;
                out.push(Finding::new(
                    RULE_ID,
                    &file.path,
                    red.line,
                    red.col,
                    format!(
                        "`{}` holds an unconsumed parallel chain and `.{}()` reduces it in \
                         scheduling order; collect with ordered_par_map and reduce serially",
                        tok.text, red.text
                    ),
                ));
            }
        }
        b += 1;
    }
}

const RULE_ID: &str = "unordered-float-reduction";

/// Scans a statement from body position `start` to its `;` (at the
/// statement's own brace depth). Returns (contains a par-iter adapter,
/// contains a terminal consumer, body index of the statement end).
fn scan_stmt(code: &[(usize, &Token)], body: &[usize], start: usize) -> (bool, bool, usize) {
    let mut depth = 0i32;
    let mut has_par = false;
    let mut has_terminal = false;
    let mut b = start;
    while b < body.len() {
        let tok = code[body[b]].1;
        if tok.is_punct('{') || tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct('}') || tok.is_punct(')') || tok.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && tok.is_punct(';') {
            break;
        } else if tok.kind == TokenKind::Ident {
            if crate::rules::PAR_ITER_IDENTS.contains(&tok.text.as_str()) {
                has_par = true;
            }
            if PAR_TERMINAL_IDENTS.contains(&tok.text.as_str()) {
                has_terminal = true;
            }
        }
        b += 1;
    }
    (has_par, has_terminal, b)
}

/// Part (b): `total += …` inside a parallel-chain statement where `total`
/// is captured from outside the chain (not a closure parameter, not a local
/// `let` inside the chain) — racy or order-dependent accumulation that the
/// ordered helpers exist to replace.
fn captured_accumulators(
    file: &SourceFile,
    code: &[(usize, &Token)],
    body: &[usize],
    out: &mut Vec<Finding>,
) {
    let mut b = 0usize;
    while b < body.len() {
        let tok = code[body[b]].1;
        let starts_chain = tok.kind == TokenKind::Ident
            && crate::rules::PAR_ITER_IDENTS.contains(&tok.text.as_str())
            && !file.is_test_line(tok.line);
        if !starts_chain {
            b += 1;
            continue;
        }
        let (_, _, stmt_end) = scan_stmt(code, body, b);
        let span = &body[b..stmt_end.min(body.len())];

        // Names bound inside the span: closure parameters (idents between
        // `|…|`) and span-local `let` bindings. Over-approximate toward
        // *not* flagging: any ident between pipes counts (patterns, types).
        let mut local: Vec<String> = Vec::new();
        let mut k = 0usize;
        while k < span.len() {
            let t = code[span[k]].1;
            if t.is_punct('|') {
                let mut j = k + 1;
                while j < span.len() && !code[span[j]].1.is_punct('|') {
                    let p = code[span[j]].1;
                    if p.kind == TokenKind::Ident && !is_keyword(&p.text) {
                        local.push(p.text.clone());
                    }
                    j += 1;
                }
                k = j;
            } else if t.is_ident("let") {
                let mut j = k + 1;
                if j < span.len() && code[span[j]].1.is_ident("mut") {
                    j += 1;
                }
                if j < span.len() && code[span[j]].1.kind == TokenKind::Ident {
                    local.push(code[span[j]].1.text.clone());
                }
            }
            k += 1;
        }

        for k in 1..span.len() {
            let op = code[span[k - 1]].1;
            let eq = code[span[k]].1;
            let compound = matches!(op.kind, TokenKind::Punct)
                && matches!(op.text.as_str(), "+" | "-" | "*" | "/")
                && eq.is_punct('=')
                && eq.line == op.line
                && eq.col == op.col + 1;
            if !compound {
                continue;
            }
            let Some(root) = lhs_root(code, span, k - 1) else {
                continue;
            };
            if local.iter().any(|l| l == &root) {
                continue;
            }
            out.push(Finding::new(
                RULE_ID,
                &file.path,
                op.line,
                op.col,
                format!(
                    "compound assignment `{}=` to `{root}` captured inside a parallel \
                     chain accumulates in scheduling order; collect with ordered_par_map \
                     and reduce serially",
                    op.text
                ),
            ));
        }
        b = stmt_end.max(b + 1);
    }
}

/// Walks left from the compound operator at span position `op` to the root
/// identifier of the assignment target (`self.total` → `self`,
/// `acc[i]` → `acc`).
fn lhs_root(code: &[(usize, &Token)], span: &[usize], op: usize) -> Option<String> {
    let mut k = op.checked_sub(1)?;
    loop {
        let tok = code[span[k]].1;
        if tok.is_punct(']') || tok.is_punct(')') {
            // Skip the bracketed group.
            let close = if tok.is_punct(']') { ']' } else { ')' };
            let open = if close == ']' { '[' } else { '(' };
            let mut depth = 0i32;
            loop {
                let t = code[span[k]].1;
                if t.is_punct(close) {
                    depth += 1;
                } else if t.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            k = k.checked_sub(1)?;
        } else if tok.kind == TokenKind::Ident {
            if k >= 2 && code[span[k - 1]].1.is_punct('.') {
                k -= 2; // field/deref chain: keep walking to the base
            } else {
                return Some(tok.text.clone());
            }
        } else {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn serve_file(src: &str) -> SourceFile {
        SourceFile::parse("crates/serve/src/x.rs", "pnc-serve", FileKind::Lib, src)
    }

    #[test]
    fn guard_across_blocking_io_is_flagged() {
        let f = serve_file(
            r#"
            fn handler(&self) {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                self.stream.write_all(&bytes)?;
            }
            "#,
        );
        let mut out = Vec::new();
        lock_across_blocking(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("`state`"), "{}", out[0].message);
    }

    #[test]
    fn condvar_wait_consuming_the_guard_is_the_correct_idiom() {
        let f = serve_file(
            r#"
            fn next(&self) {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
            "#,
        );
        let mut out = Vec::new();
        lock_across_blocking(&f, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn guard_scoped_in_an_inner_block_before_join_is_clean() {
        let f = serve_file(
            r#"
            fn shutdown(&self) {
                let workers = {
                    let mut guard = self.workers.lock().unwrap_or_else(|e| e.into_inner());
                    std::mem::take(&mut *guard)
                };
                for w in workers { let _ = w.join(); }
            }
            "#,
        );
        let mut out = Vec::new();
        lock_across_blocking(&f, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn dropped_guard_is_dead_before_the_blocking_call() {
        let f = serve_file(
            r#"
            fn push(&self) {
                let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                drop(state);
                self.stream.flush()?;
            }
            "#,
        );
        let mut out = Vec::new();
        lock_across_blocking(&f, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn deferred_par_chain_reduced_later_is_flagged() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "pnc-core",
            FileKind::Lib,
            r#"
            fn total(xs: &[f64]) -> f64 {
                let chain = xs.par_iter().map(|x| x * 2.0);
                chain.sum()
            }
            "#,
        );
        let mut out = Vec::new();
        unordered_float_reduction(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("chain"), "{}", out[0].message);
    }

    #[test]
    fn collected_chain_is_not_a_live_parallel_iterator() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "pnc-core",
            FileKind::Lib,
            r#"
            fn total(xs: &[f64]) -> f64 {
                let rows: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
                rows.iter().sum()
            }
            "#,
        );
        let mut out = Vec::new();
        unordered_float_reduction(&f, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn captured_accumulator_is_flagged_but_closure_locals_are_not() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "pnc-core",
            FileKind::Lib,
            r#"
            fn bad(xs: &[f64], total: &mut f64) {
                xs.par_iter().for_each(|x| { *total += x; });
            }
            fn good(xs: &[f64]) -> Vec<f64> {
                xs.par_iter().map(|x| { let mut acc = 0.0; acc += x; acc }).collect()
            }
            "#,
        );
        let mut out = Vec::new();
        unordered_float_reduction(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("total"), "{}", out[0].message);
    }

    #[test]
    fn serial_fold_inside_a_per_item_closure_is_deterministic() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "pnc-core",
            FileKind::Lib,
            r#"
            fn rows(xs: &[Vec<f64>]) -> Vec<f64> {
                xs.par_iter().map(|row| row.iter().fold(0.0, |a, b| a + b)).collect()
            }
            "#,
        );
        let mut out = Vec::new();
        unordered_float_reduction(&f, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
