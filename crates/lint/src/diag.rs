//! Findings: what a rule reports, where, and in what state.

use std::fmt;

/// Lifecycle state of a finding after suppressions and the baseline have
/// been applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Unsuppressed, not covered by the baseline — fails `check`.
    New,
    /// Silenced by an inline `pnc-lint: allow(...)` comment; carries the
    /// stated reason.
    Suppressed(String),
    /// Covered by the checked-in ratchet baseline (pre-existing debt).
    Baselined,
}

/// One diagnostic produced by a rule (or by the engine's suppression
/// hygiene checks).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `no-panic-in-lib`.
    pub rule: &'static str,
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the remedy.
    pub message: String,
    /// Suppression/baseline state.
    pub status: Status,
}

impl Finding {
    /// Creates a finding in the [`Status::New`] state.
    pub fn new(rule: &'static str, path: &str, line: u32, col: u32, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            message,
            status: Status::New,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sorts findings into the stable reporting order: path, then line, column,
/// and rule id.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}
