//! Markdown-side extraction for the doc/code consistency rules:
//! metric names from `docs/METRICS.md` and environment variables from the
//! README table.

/// A documentation file loaded for cross-checking.
#[derive(Debug, Clone)]
pub struct DocFile {
    /// Workspace-relative path.
    pub path: String,
    /// Raw markdown text.
    pub text: String,
}

/// The documentation set the workspace rules cross-check against.
#[derive(Debug, Clone, Default)]
pub struct Docs {
    /// `docs/METRICS.md`, when present.
    pub metrics: Option<DocFile>,
    /// `README.md`, when present.
    pub readme: Option<DocFile>,
}

/// Metric names catalogued in the `## Counters`, `## Histograms` and
/// `## Gauges` tables of METRICS.md, with the 1-based line of each row.
/// Only those sections are read: sink events and summary files are named
/// elsewhere in the document and are not `Counter`/`Histogram`/`Gauge`
/// constructors.
pub fn metric_names(md: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_metric_section = false;
    for (idx, line) in md.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if let Some(header) = line.strip_prefix("## ") {
            let header = header.trim();
            in_metric_section =
                header == "Counters" || header == "Histograms" || header == "Gauges";
            continue;
        }
        if !in_metric_section {
            continue;
        }
        if let Some(name) = first_backtick_cell(line) {
            out.push((name, lineno));
        }
    }
    out
}

/// For a markdown table row `| `name` | … |`, the content of the first
/// backticked cell — skipping header/separator rows.
fn first_backtick_cell(line: &str) -> Option<String> {
    let trimmed = line.trim();
    let rest = trimmed.strip_prefix('|')?.trim_start();
    let rest = rest.strip_prefix('`')?;
    let end = rest.find('`')?;
    let name = &rest[..end];
    if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    }
}

/// Environment variables documented as README table rows (`| \`PNC_X\` | …`),
/// with their 1-based lines.
pub fn readme_env_table(md: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in md.lines().enumerate() {
        if let Some(name) = first_backtick_cell(line) {
            if is_env_name(&name) {
                out.push((name, idx as u32 + 1));
            }
        }
    }
    out
}

/// Every `PNC_…` identifier mentioned anywhere in `md` (table or prose).
/// Used for the "is this variable documented at all" direction, which is
/// deliberately more lenient than the table check.
pub fn env_mentions(md: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let bytes = md.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = md[i..].find("PNC_") {
        let start = i + pos;
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = &md[start..end];
        if is_env_name(name) && !out.iter().any(|n| n == name) {
            out.push(name.to_string());
        }
        i = end.max(start + 4);
    }
    out
}

/// True for `PNC_`-prefixed uppercase identifiers (the workspace's
/// environment-variable namespace).
pub fn is_env_name(s: &str) -> bool {
    s.len() > 4
        && s.starts_with("PNC_")
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}
