//! The flat (token-pattern) workspace-invariant rules, plus the registry
//! of every rule the engine runs. The structural rules themselves live in
//! [`crate::structural`].
//!
//! Per-file rules take one [`SourceFile`]; workspace rules additionally see
//! every file and the loaded [`Docs`]. All rules are token-level
//! over-approximations chosen so that (a) real violations cannot hide in
//! comments or strings, and (b) a deliberate, justified exception is one
//! inline suppression away. `docs/LINTS.md` is the user-facing catalogue.

use crate::diag::Finding;
use crate::docs::{self, Docs};
use crate::lexer::{Token, TokenKind};
use crate::source::{FileKind, SourceFile};

/// Static description of one rule, for `pnc-lint rules` and docs drift.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id used in findings and `allow(...)` suppressions.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Whether pre-existing findings may live in the ratchet baseline.
    pub baselinable: bool,
}

/// Rule id of the engine's own suppression-hygiene diagnostics (malformed,
/// unknown-rule, or unused `allow(...)` comments). Not suppressible.
pub const SUPPRESSION_RULE: &str = "suppression-hygiene";

/// Every rule the engine runs, in documentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-wallclock",
        summary: "Instant::now/SystemTime only in pnc-obs, pnc-bench, tests, benches, examples",
        baselinable: false,
    },
    RuleInfo {
        id: "no-hash-iteration",
        summary: "HashMap/HashSet banned in numeric crates (iteration order is nondeterministic)",
        baselinable: false,
    },
    RuleInfo {
        id: "ordered-reduction",
        summary: "float sum/fold/reduce inside rayon parallel chains must use the ordered helpers",
        baselinable: false,
    },
    RuleInfo {
        id: "no-panic-in-lib",
        summary: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! banned in shipping code",
        baselinable: true,
    },
    RuleInfo {
        id: "forbid-unsafe-kept",
        summary: "every crate root must retain #![forbid(unsafe_code)]",
        baselinable: false,
    },
    RuleInfo {
        id: "metric-key-drift",
        summary: "Counter/Histogram name literals and docs/METRICS.md must match 1:1",
        baselinable: false,
    },
    RuleInfo {
        id: "env-var-registry",
        summary: "every std::env::var(\"PNC_…\") read must be documented in the README table",
        baselinable: false,
    },
    RuleInfo {
        id: "oracle-freeze",
        summary:
            "registered oracle fns are content-hash-frozen; edits require update-oracles --justify",
        baselinable: false,
    },
    RuleInfo {
        id: "panic-reachability",
        summary: "no pub library API may reach a residual panic site; shortest call path reported",
        baselinable: false,
    },
    RuleInfo {
        id: "lock-across-blocking",
        summary: "MutexGuard live across Condvar::wait or TCP/file I/O in pnc-serve",
        baselinable: false,
    },
    RuleInfo {
        id: "unordered-float-reduction",
        summary: "deferred par chains / captured += accumulators must use the ordered helpers",
        baselinable: false,
    },
];

/// True when `id` names a rule (including the engine's hygiene pseudo-rule,
/// which exists so reports can name it — it still cannot be suppressed).
pub fn is_known_rule(id: &str) -> bool {
    id == SUPPRESSION_RULE || RULES.iter().any(|r| r.id == id)
}

/// Crates whose numeric results must be bit-identical across thread counts;
/// hash-ordered iteration is banned here outright.
const NUMERIC_CRATES: &[&str] = &[
    "pnc-linalg",
    "pnc-autodiff",
    "pnc-spice",
    "pnc-fit",
    "pnc-core",
    "pnc-surrogate",
    "pnc-qmc",
];

/// Crates allowed to read the wall clock: timing is the purpose of
/// `pnc-obs` and `pnc-bench`, and `pnc-serve`'s micro-batcher dwells on a
/// real deadline (traffic shape is wall-clock-dependent by nature; response
/// payloads stay deterministic).
const WALLCLOCK_CRATES: &[&str] = &["pnc-obs", "pnc-bench", "pnc-serve"];

/// The one file allowed to spell out raw rayon reductions: it *implements*
/// the ordered helpers everything else must call.
pub(crate) const ORDERED_HELPER_FILE: &str = "crates/linalg/src/parallel.rs";

/// Rayon combinators that start a parallel chain.
pub(crate) const PAR_ITER_IDENTS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
    "par_bridge",
];

/// Unordered reduction combinators that must not follow a parallel chain.
pub(crate) const REDUCTION_IDENTS: &[&str] = &["sum", "product", "fold", "reduce", "reduce_with"];

/// Runs every per-file rule on `file`.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    no_wallclock(file, &mut findings);
    no_hash_iteration(file, &mut findings);
    ordered_reduction(file, &mut findings);
    no_panic_in_lib(file, &mut findings);
    forbid_unsafe_kept(file, &mut findings);
    findings
}

/// Runs the workspace-level doc/code consistency rules.
pub fn check_workspace(files: &[SourceFile], docs: &Docs) -> Vec<Finding> {
    let mut findings = Vec::new();
    metric_key_drift(files, docs, &mut findings);
    env_var_registry(files, docs, &mut findings);
    findings
}

/// Code tokens (comments dropped) of a file, borrowed.
fn code(file: &SourceFile) -> Vec<&Token> {
    file.tokens.iter().filter(|t| t.is_code()).collect()
}

fn no_wallclock(file: &SourceFile, out: &mut Vec<Finding>) {
    if WALLCLOCK_CRATES.contains(&file.crate_name.as_str()) || !file.kind.is_shipping() {
        return;
    }
    let toks = code(file);
    for (i, tok) in toks.iter().enumerate() {
        if file.is_test_line(tok.line) {
            continue;
        }
        let hit = if tok.is_ident("SystemTime") {
            true
        } else if tok.is_ident("Instant") {
            toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        } else {
            false
        };
        if hit {
            out.push(Finding::new(
                "no-wallclock",
                &file.path,
                tok.line,
                tok.col,
                format!(
                    "wall-clock read `{}` in deterministic code; time belongs in pnc-obs spans, \
                     pnc-bench, or tests",
                    tok.text
                ),
            ));
        }
    }
}

fn no_hash_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    if !NUMERIC_CRATES.contains(&file.crate_name.as_str()) || !file.kind.is_shipping() {
        return;
    }
    for tok in file.tokens.iter().filter(|t| t.is_code()) {
        if (tok.is_ident("HashMap") || tok.is_ident("HashSet")) && !file.is_test_line(tok.line) {
            out.push(Finding::new(
                "no-hash-iteration",
                &file.path,
                tok.line,
                tok.col,
                format!(
                    "`{}` in numeric crate `{}`: iteration order varies run-to-run; use \
                     BTreeMap/BTreeSet or a Vec (suppress only for proven lookup-only use)",
                    tok.text, file.crate_name
                ),
            ));
        }
    }
}

fn ordered_reduction(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.kind.is_shipping() || file.path == ORDERED_HELPER_FILE {
        return;
    }
    let toks = code(file);
    let mut i = 0usize;
    while i < toks.len() {
        let tok = toks[i];
        if tok.kind == TokenKind::Ident
            && PAR_ITER_IDENTS.contains(&tok.text.as_str())
            && !file.is_test_line(tok.line)
        {
            // Scan the rest of the statement for unordered reductions.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                let t = toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && t.is_punct(';') {
                    break;
                } else if depth == 0
                    && t.kind == TokenKind::Ident
                    && REDUCTION_IDENTS.contains(&t.text.as_str())
                    && toks[j - 1].is_punct('.')
                {
                    // depth == 0 keeps this to combinators chained directly
                    // on the parallel iterator; a serial fold inside a
                    // per-item closure is deterministic and not flagged.
                    out.push(Finding::new(
                        "ordered-reduction",
                        &file.path,
                        t.line,
                        t.col,
                        format!(
                            "`.{}()` after `{}`: parallel reduction order is \
                             scheduling-dependent; collect with \
                             ParallelConfig::ordered_par_map and reduce serially",
                            t.text, tok.text
                        ),
                    ));
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
}

fn no_panic_in_lib(file: &SourceFile, out: &mut Vec<Finding>) {
    // Library code only: binaries may abort on setup failure (their panics
    // surface as a nonzero exit, not a corrupted long computation).
    if !matches!(file.kind, FileKind::CrateRoot | FileKind::Lib) {
        return;
    }
    let toks = code(file);
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.is_test_line(tok.line) {
            continue;
        }
        let method_call =
            matches!(tok.text.as_str(), "unwrap" | "expect") && i > 0 && toks[i - 1].is_punct('.');
        let macro_call = matches!(
            tok.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if method_call || macro_call {
            let display = if macro_call {
                format!("{}!", tok.text)
            } else {
                format!(".{}()", tok.text)
            };
            out.push(Finding::new(
                "no-panic-in-lib",
                &file.path,
                tok.line,
                tok.col,
                format!(
                    "`{display}` in shipping code can abort the process; return a Result \
                     (or suppress with the invariant that makes it unreachable)"
                ),
            ));
        }
    }
}

fn forbid_unsafe_kept(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::CrateRoot {
        return;
    }
    let toks = code(file);
    let found = toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !found {
        out.push(Finding::new(
            "forbid-unsafe-kept",
            &file.path,
            1,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`; every workspace crate keeps it"
                .to_string(),
        ));
    }
}

/// A metric-name literal found in code: `Counter::new("…")`,
/// `Histogram::new("…")` or `Gauge::new("…")` outside test code.
#[derive(Debug)]
struct MetricUse {
    name: String,
    path: String,
    line: u32,
    col: u32,
}

fn collect_metric_uses(files: &[SourceFile]) -> Vec<MetricUse> {
    let mut uses = Vec::new();
    for file in files {
        if !file.kind.is_shipping() {
            continue;
        }
        let toks = code(file);
        for w in toks.windows(6) {
            if (w[0].is_ident("Counter") || w[0].is_ident("Histogram") || w[0].is_ident("Gauge"))
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident("new")
                && w[4].is_punct('(')
                && w[5].kind == TokenKind::Str
                && !file.is_test_line(w[0].line)
            {
                uses.push(MetricUse {
                    name: w[5].text.clone(),
                    path: file.path.clone(),
                    line: w[5].line,
                    col: w[5].col,
                });
            }
        }
    }
    uses
}

fn metric_key_drift(files: &[SourceFile], docs: &Docs, out: &mut Vec<Finding>) {
    let uses = collect_metric_uses(files);
    let Some(metrics_md) = &docs.metrics else {
        if !uses.is_empty() {
            let first = &uses[0];
            out.push(Finding::new(
                "metric-key-drift",
                &first.path,
                first.line,
                first.col,
                "metrics are constructed but docs/METRICS.md was not found".to_string(),
            ));
        }
        return;
    };
    let documented = docs::metric_names(&metrics_md.text);
    for m in &uses {
        if !documented.iter().any(|(name, _)| name == &m.name) {
            out.push(Finding::new(
                "metric-key-drift",
                &m.path,
                m.line,
                m.col,
                format!(
                    "metric `{}` is not catalogued in the Counters/Histograms/Gauges tables of {}",
                    m.name, metrics_md.path
                ),
            ));
        }
    }
    for (name, line) in &documented {
        if !uses.iter().any(|m| &m.name == name) {
            out.push(Finding::new(
                "metric-key-drift",
                &metrics_md.path,
                *line,
                1,
                format!(
                    "documented metric `{name}` has no Counter::new/Histogram::new/Gauge::new \
                     call site in the workspace"
                ),
            ));
        }
    }
}

fn env_var_registry(files: &[SourceFile], docs: &Docs, out: &mut Vec<Finding>) {
    // Reads: env::var / env::var_os with a PNC_ literal argument.
    let mut reads: Vec<MetricUse> = Vec::new();
    // All PNC_ string literals anywhere in shipping code (covers reads that
    // go through a named constant, e.g. ParallelConfig::ENV_VAR).
    let mut literals: Vec<String> = Vec::new();
    for file in files {
        if file.kind == FileKind::Test || file.kind == FileKind::Bench {
            continue;
        }
        let toks = code(file);
        for (i, tok) in toks.iter().enumerate() {
            if tok.kind == TokenKind::Str && docs::is_env_name(&tok.text) {
                if file.is_test_line(tok.line) {
                    continue;
                }
                if !literals.contains(&tok.text) {
                    literals.push(tok.text.clone());
                }
                let is_env_read = i >= 4
                    && toks[i - 1].is_punct('(')
                    && (toks[i - 2].is_ident("var") || toks[i - 2].is_ident("var_os"))
                    && toks[i - 3].is_punct(':')
                    && toks[i - 4].is_punct(':')
                    && toks
                        .get(i.wrapping_sub(5))
                        .is_some_and(|t| t.is_ident("env"));
                if is_env_read {
                    reads.push(MetricUse {
                        name: tok.text.clone(),
                        path: file.path.clone(),
                        line: tok.line,
                        col: tok.col,
                    });
                }
            }
        }
    }
    let Some(readme) = &docs.readme else {
        if let Some(first) = reads.first() {
            out.push(Finding::new(
                "env-var-registry",
                &first.path,
                first.line,
                first.col,
                "PNC_ environment variables are read but README.md was not found".to_string(),
            ));
        }
        return;
    };
    let mentions = docs::env_mentions(&readme.text);
    for read in &reads {
        if !mentions.iter().any(|m| m == &read.name) {
            out.push(Finding::new(
                "env-var-registry",
                &read.path,
                read.line,
                read.col,
                format!(
                    "`{}` is read from the environment but absent from the README \
                     environment-variable table",
                    read.name
                ),
            ));
        }
    }
    // Reverse direction: every table row must correspond to a literal the
    // code actually carries, so the table cannot advertise dead knobs.
    for (name, line) in docs::readme_env_table(&readme.text) {
        if !literals.iter().any(|l| l == &name) {
            out.push(Finding::new(
                "env-var-registry",
                &readme.path,
                line,
                1,
                format!(
                    "README documents `{name}` but no shipping code carries that \
                     environment-variable literal"
                ),
            ));
        }
    }
}
