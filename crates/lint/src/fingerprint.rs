//! Normalized-token content fingerprints for the oracle-freeze registry.
//!
//! A fingerprint covers a function item from its `fn` keyword through the
//! closing brace of its body, hashing only *code* tokens (kind + text).
//! Comments, doc comments, whitespace, and formatting therefore never
//! perturb the hash — `cargo fmt` and comment edits are free — while any
//! token-level change to the signature or body (a literal, an operator, a
//! renamed local) changes it. The hash is FNV-1a 64, rendered as 16 lower
//! hex digits; it needs to be stable and cheap, not cryptographic — the
//! registry guards against *accidental* edits, and review guards against
//! adversarial ones.

use crate::lexer::{Token, TokenKind};
use crate::scope::FnItem;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 hasher (zero-dependency; `std::hash` offers no
/// stable-across-runs hasher by design).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes the code tokens of `item` (inclusive `fn` keyword through body
/// close) from the file's full token stream.
pub fn fn_fingerprint(tokens: &[Token], item: &FnItem) -> String {
    let mut h = Fnv::new();
    let end = item.body_close.min(tokens.len().saturating_sub(1));
    for tok in tokens
        .iter()
        .take(end + 1)
        .skip(item.sig_start)
        .filter(|t| t.is_code())
    {
        // One discriminant byte per kind keeps `"x"` (Str) distinct from
        // `x` (Ident); 0xFF terminates each token so concatenations can't
        // collide (`ab`+`c` vs `a`+`bc`).
        h.update(&[kind_tag(tok.kind)]);
        h.update(tok.text.as_bytes());
        h.update(&[0xFF]);
    }
    format!("{:016x}", h.0)
}

fn kind_tag(kind: TokenKind) -> u8 {
    match kind {
        TokenKind::Ident => 1,
        TokenKind::Lifetime => 2,
        TokenKind::Number => 3,
        TokenKind::Str => 4,
        TokenKind::Char => 5,
        TokenKind::Punct => 6,
        TokenKind::LineComment => 7,
        TokenKind::BlockComment => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::parse_fns;

    fn hash_first(src: &str) -> String {
        let toks = lex(src);
        let fns = parse_fns(&toks);
        assert!(!fns.is_empty(), "no fn in fixture: {src}");
        fn_fingerprint(&toks, &fns[0])
    }

    #[test]
    fn comments_and_formatting_do_not_change_the_hash() {
        let a = hash_first("fn f(x: f64) -> f64 { x * 0.5 }");
        let b = hash_first("fn f(\n    x: f64\n) -> f64 {\n    // halve\n    x * 0.5\n}");
        assert_eq!(a, b);
        // A trailing comma IS a token change, though: normalization covers
        // comments and whitespace, nothing syntactic.
        let c = hash_first("fn f(x: f64,) -> f64 { x * 0.5 }");
        assert_ne!(a, c);
    }

    #[test]
    fn any_code_token_change_changes_the_hash() {
        let base = hash_first("fn f(x: f64) -> f64 { x * 0.5 }");
        let literal = hash_first("fn f(x: f64) -> f64 { x * 0.75 }");
        let operator = hash_first("fn f(x: f64) -> f64 { x + 0.5 }");
        let rename = hash_first("fn f(y: f64) -> f64 { y * 0.5 }");
        assert_ne!(base, literal);
        assert_ne!(base, operator);
        assert_ne!(base, rename);
    }

    #[test]
    fn string_and_ident_tokens_do_not_collide() {
        let s = hash_first(r#"fn f() { g("x"); }"#);
        let i = hash_first("fn f() { g(x); }");
        assert_ne!(s, i);
    }

    #[test]
    fn hash_is_16_hex_chars() {
        let h = hash_first("fn f() {}");
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
