//! Lexer behavior tests: code must never be confused with the inside of a
//! comment, string, raw string, char literal, or lifetime — that soundness
//! is what every rule's token matching rests on.

use pnc_lint::lexer::{lex, TokenKind};

fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
}

fn code_idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn identifiers_and_punctuation() {
    let toks = kinds("let x = foo::bar(1);");
    assert!(toks.contains(&(TokenKind::Ident, "let".to_string())));
    assert!(toks.contains(&(TokenKind::Ident, "foo".to_string())));
    assert!(toks.contains(&(TokenKind::Punct, ";".to_string())));
    // `::` is two adjacent single-char puncts by design.
    let colons = toks
        .iter()
        .filter(|(k, t)| *k == TokenKind::Punct && t == ":")
        .count();
    assert_eq!(colons, 2);
}

#[test]
fn line_comments_are_not_code() {
    let toks = lex("foo(); // unwrap() inside a comment\nbar();");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::LineComment && t.text.contains("unwrap")));
    // The ident `unwrap` never appears as code.
    assert!(!code_idents("foo(); // unwrap() here\n").contains(&"unwrap".to_string()));
}

#[test]
fn block_comments_nest() {
    let src = "a /* outer /* inner */ still comment */ b";
    let idents = code_idents(src);
    assert_eq!(idents, vec!["a".to_string(), "b".to_string()]);
    let comment = lex(src)
        .into_iter()
        .find(|t| t.kind == TokenKind::BlockComment)
        .expect("block comment token");
    assert!(comment.text.contains("inner"));
}

#[test]
fn strings_hide_their_content_from_code() {
    // `HashMap` inside a string must not surface as an identifier.
    assert!(!code_idents(r#"let s = "HashMap::new()";"#).contains(&"HashMap".to_string()));
    // Escaped quote does not terminate the string early.
    let toks = kinds(r#"f("a\"b", c)"#);
    assert!(toks.contains(&(TokenKind::Str, "a\"b".to_string())));
    assert!(toks.contains(&(TokenKind::Ident, "c".to_string())));
}

#[test]
fn raw_strings_with_hashes() {
    let src = r###"let s = r#"quote " and // not a comment"#; after();"###;
    let toks = lex(src);
    let s = toks
        .iter()
        .find(|t| t.kind == TokenKind::Str)
        .expect("raw string token");
    assert!(s.text.contains("not a comment"));
    assert!(toks.iter().any(|t| t.is_ident("after")));
    assert!(!toks.iter().any(|t| t.kind == TokenKind::LineComment));
}

#[test]
fn char_literal_versus_lifetime() {
    // 'a' is a char; 'a (no closing quote) is a lifetime.
    let toks = kinds("let c = 'a'; fn f<'a>(x: &'a str) {}");
    assert!(toks.contains(&(TokenKind::Char, "a".to_string())));
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .collect();
    assert_eq!(lifetimes.len(), 2, "{toks:?}");
    // An escaped char literal still lexes as one char token.
    let toks = kinds(r"let n = '\n';");
    assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
}

#[test]
fn numbers_including_floats_and_exponents() {
    let toks = kinds("let x = 1.5e-3 + 42 + 0xff;");
    let numbers: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Number)
        .map(|(_, t)| t.clone())
        .collect();
    assert!(numbers.contains(&"1.5e-3".to_string()), "{numbers:?}");
    assert!(numbers.contains(&"42".to_string()));
    // A range `1..2` is two integers, not a malformed float.
    let toks = kinds("for i in 1..20 {}");
    let numbers: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Number)
        .map(|(_, t)| t.clone())
        .collect();
    assert_eq!(numbers, vec!["1".to_string(), "20".to_string()]);
}

#[test]
fn positions_are_one_based_lines_and_columns() {
    let toks = lex("a\n  b");
    let a = toks.iter().find(|t| t.is_ident("a")).expect("a");
    let b = toks.iter().find(|t| t.is_ident("b")).expect("b");
    assert_eq!((a.line, a.col), (1, 1));
    assert_eq!((b.line, b.col), (2, 3));
}

#[test]
fn lexing_never_fails_on_garbage() {
    // Unterminated constructs must produce tokens, not hang or panic.
    for src in [
        "\"unterminated",
        "/* unterminated",
        "r#\"unterminated",
        "'",
        "r#",
    ] {
        let _ = lex(src);
    }
}
