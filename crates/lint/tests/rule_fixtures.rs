//! Fixture-driven positive/negative tests: every rule must catch its
//! deliberately seeded violations and stay quiet on the adjacent compliant
//! code. Fixtures live under `tests/fixtures/` — a directory the workspace
//! loader skips, so the seeded violations never leak into real runs.

use pnc_lint::docs::{DocFile, Docs};
use pnc_lint::engine::analyze;
use pnc_lint::{FileKind, SourceFile, Status};

/// Parses a fixture as one file of a pretend workspace and runs the full
/// engine (rules + suppressions) over it with the given docs.
fn run(
    path: &str,
    crate_name: &str,
    kind: FileKind,
    text: &str,
    docs: &Docs,
) -> Vec<pnc_lint::Finding> {
    let file = SourceFile::parse(path, crate_name, kind, text);
    analyze(&[file], docs, &std::collections::BTreeMap::new())
}

fn rule_lines(findings: &[pnc_lint::Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.status == Status::New)
        .map(|f| f.line)
        .collect()
}

#[test]
fn no_wallclock_catches_seeded_reads() {
    let text = include_str!("fixtures/wallclock.rs");
    let findings = run(
        "crates/core/src/wallclock.rs",
        "pnc-core",
        FileKind::Lib,
        text,
        &Docs::default(),
    );
    // Instant::now once, SystemTime twice; the comment, string-literal, and
    // cfg(test) mentions must all stay quiet.
    assert_eq!(
        rule_lines(&findings, "no-wallclock").len(),
        3,
        "{findings:?}"
    );
}

#[test]
fn no_wallclock_exempts_timing_crates() {
    let text = include_str!("fixtures/wallclock.rs");
    for crate_name in ["pnc-obs", "pnc-bench"] {
        let findings = run(
            "crates/obs/src/wallclock.rs",
            crate_name,
            FileKind::Lib,
            text,
            &Docs::default(),
        );
        assert!(
            rule_lines(&findings, "no-wallclock").is_empty(),
            "{findings:?}"
        );
    }
}

#[test]
fn no_hash_iteration_catches_numeric_crate_use() {
    let text = include_str!("fixtures/hash_iteration.rs");
    let findings = run(
        "crates/linalg/src/hash.rs",
        "pnc-linalg",
        FileKind::Lib,
        text,
        &Docs::default(),
    );
    // Three HashMap mentions; the cfg(test) HashSet stays quiet.
    assert_eq!(
        rule_lines(&findings, "no-hash-iteration").len(),
        3,
        "{findings:?}"
    );
}

#[test]
fn no_hash_iteration_ignores_non_numeric_crates() {
    let text = include_str!("fixtures/hash_iteration.rs");
    let findings = run(
        "crates/bench/src/hash.rs",
        "pnc-bench",
        FileKind::Lib,
        text,
        &Docs::default(),
    );
    assert!(
        rule_lines(&findings, "no-hash-iteration").is_empty(),
        "{findings:?}"
    );
}

#[test]
fn ordered_reduction_catches_parallel_sum_only() {
    let text = include_str!("fixtures/ordered_reduction.rs");
    let findings = run(
        "crates/core/src/par.rs",
        "pnc-core",
        FileKind::Lib,
        text,
        &Docs::default(),
    );
    // Exactly the `.sum()` chained on par_iter; the serial fold inside the
    // closure and the fully serial sum stay quiet.
    assert_eq!(
        rule_lines(&findings, "ordered-reduction").len(),
        1,
        "{findings:?}"
    );
}

#[test]
fn ordered_reduction_exempts_the_helper_implementation() {
    let text = include_str!("fixtures/ordered_reduction.rs");
    let findings = run(
        "crates/linalg/src/parallel.rs",
        "pnc-linalg",
        FileKind::Lib,
        text,
        &Docs::default(),
    );
    assert!(
        rule_lines(&findings, "ordered-reduction").is_empty(),
        "{findings:?}"
    );
}

#[test]
fn no_panic_in_lib_catches_seeded_panics_and_honors_suppression() {
    let text = include_str!("fixtures/panics.rs");
    let findings = run(
        "crates/core/src/panics.rs",
        "pnc-core",
        FileKind::Lib,
        text,
        &Docs::default(),
    );
    // unwrap, expect, panic!, unreachable! — 4 new; the suppressed unwrap
    // and the cfg(test) module stay out of the New set.
    assert_eq!(
        rule_lines(&findings, "no-panic-in-lib").len(),
        4,
        "{findings:?}"
    );
    let suppressed: Vec<_> = findings
        .iter()
        .filter(|f| matches!(f.status, Status::Suppressed(_)))
        .collect();
    assert_eq!(suppressed.len(), 1, "{findings:?}");
    // The suppression is used, so no hygiene findings appear.
    assert!(
        rule_lines(&findings, "suppression-hygiene").is_empty(),
        "{findings:?}"
    );
}

#[test]
fn no_panic_in_lib_exempts_binaries_tests_and_benches() {
    let text = include_str!("fixtures/panics.rs");
    for kind in [
        FileKind::Bin,
        FileKind::Test,
        FileKind::Bench,
        FileKind::Example,
    ] {
        let findings = run(
            "crates/core/src/bin/x.rs",
            "pnc-core",
            kind,
            text,
            &Docs::default(),
        );
        assert!(
            rule_lines(&findings, "no-panic-in-lib").is_empty(),
            "{kind:?}: {findings:?}"
        );
    }
}

#[test]
fn forbid_unsafe_kept_requires_the_attribute_on_crate_roots() {
    let missing = include_str!("fixtures/root_missing_forbid.rs");
    let ok = include_str!("fixtures/root_ok.rs");
    let findings = run(
        "crates/x/src/lib.rs",
        "pnc-x",
        FileKind::CrateRoot,
        missing,
        &Docs::default(),
    );
    assert_eq!(
        rule_lines(&findings, "forbid-unsafe-kept").len(),
        1,
        "{findings:?}"
    );

    let findings = run(
        "crates/x/src/lib.rs",
        "pnc-x",
        FileKind::CrateRoot,
        ok,
        &Docs::default(),
    );
    assert!(
        rule_lines(&findings, "forbid-unsafe-kept").is_empty(),
        "{findings:?}"
    );

    // Non-root files carry no such obligation.
    let findings = run(
        "crates/x/src/util.rs",
        "pnc-x",
        FileKind::Lib,
        missing,
        &Docs::default(),
    );
    assert!(
        rule_lines(&findings, "forbid-unsafe-kept").is_empty(),
        "{findings:?}"
    );
}

/// Docs pair for the metric/env fixture: each table documents one name the
/// code carries and one it does not.
fn fixture_docs() -> Docs {
    let metrics = "\
# Metrics

## Counters

| name | meaning |
|---|---|
| `fixture.documented` | constructed by the fixture |
| `fixture.ghost` | documented but never constructed |

## Histograms
";
    let readme = "\
# Fixture README

| Variable | Meaning |
|---|---|
| `PNC_FIXTURE_DOCUMENTED` | read by the fixture |
| `PNC_FIXTURE_DEAD` | documented but never read |
";
    Docs {
        metrics: Some(DocFile {
            path: "docs/METRICS.md".to_string(),
            text: metrics.to_string(),
        }),
        readme: Some(DocFile {
            path: "README.md".to_string(),
            text: readme.to_string(),
        }),
    }
}

#[test]
fn metric_key_drift_checks_both_directions() {
    let text = include_str!("fixtures/metrics_env.rs");
    let findings = run(
        "crates/core/src/metrics_env.rs",
        "pnc-core",
        FileKind::Lib,
        text,
        &fixture_docs(),
    );
    let drift: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "metric-key-drift")
        .collect();
    assert_eq!(drift.len(), 2, "{drift:?}");
    // Code → docs: the undocumented constructor is reported at its call site.
    assert!(
        drift
            .iter()
            .any(|f| f.path.ends_with("metrics_env.rs")
                && f.message.contains("fixture.undocumented")),
        "{drift:?}"
    );
    // Docs → code: the ghost row is reported against METRICS.md.
    assert!(
        drift
            .iter()
            .any(|f| f.path == "docs/METRICS.md" && f.message.contains("fixture.ghost")),
        "{drift:?}"
    );
}

#[test]
fn env_var_registry_checks_both_directions() {
    let text = include_str!("fixtures/metrics_env.rs");
    let findings = run(
        "crates/core/src/metrics_env.rs",
        "pnc-core",
        FileKind::Lib,
        text,
        &fixture_docs(),
    );
    let env: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "env-var-registry")
        .collect();
    assert_eq!(env.len(), 2, "{env:?}");
    assert!(
        env.iter().any(|f| f.path.ends_with("metrics_env.rs")
            && f.message.contains("PNC_FIXTURE_UNDOCUMENTED")),
        "{env:?}"
    );
    assert!(
        env.iter()
            .any(|f| f.path == "README.md" && f.message.contains("PNC_FIXTURE_DEAD")),
        "{env:?}"
    );
}

#[test]
fn infer_observability_names_match_the_real_docs() {
    // Unlike the other fixtures, this one runs against the REAL workspace
    // docs: the `infer.*` counters and the PNC_INFER_PRECISION variable it
    // constructs/reads are exactly the ones `pnc-core::infer` ships, so
    // docs/METRICS.md and the README env-var table must keep them
    // documented. (Docs→code ghosts about the rest of the workspace are
    // expected here — the pretend workspace is one file — so findings are
    // filtered to the fixture's path.)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = pnc_lint::workspace::load(&root).expect("workspace loads");
    let text = include_str!("fixtures/infer.rs");
    let findings = run(
        "crates/core/src/infer_fixture.rs",
        "pnc-core",
        FileKind::Lib,
        text,
        &ws.docs,
    );
    let on_fixture: Vec<_> = findings
        .iter()
        .filter(|f| f.path.ends_with("infer_fixture.rs"))
        .collect();
    assert!(
        on_fixture.is_empty(),
        "infer.* observability drifted from the docs: {on_fixture:?}"
    );
}

#[test]
fn suppression_hygiene_reports_malformed_unknown_and_unused() {
    let text = include_str!("fixtures/suppression_hygiene.rs");
    let findings = run(
        "crates/core/src/hygiene.rs",
        "pnc-core",
        FileKind::Lib,
        text,
        &Docs::default(),
    );
    let hygiene = rule_lines(&findings, "suppression-hygiene");
    // Malformed (missing colon), unknown rule, unused, and reason-less.
    assert_eq!(hygiene.len(), 4, "{findings:?}");
}
