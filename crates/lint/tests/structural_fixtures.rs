//! Fixture-driven tests for the structural rules: every rule must catch
//! its deliberately seeded violation (positive fixture) and stay quiet on
//! the adjacent compliant idiom (negative half of the same fixture).
//!
//! The oracle-freeze tests are the regression the registry exists for: an
//! oracle body edited without a matching hash update is a finding, with
//! the original and edited fixture texts standing in for "before" and
//! "after" trees.

use pnc_lint::baseline::OracleEntry;
use pnc_lint::docs::Docs;
use pnc_lint::engine::analyze;
use pnc_lint::fingerprint::fn_fingerprint;
use pnc_lint::structural::REQUIRED_ORACLES;
use pnc_lint::{FileKind, Finding, SourceFile, Status};
use std::collections::BTreeMap;

/// Runs the full engine over a one-file pretend workspace with an oracle
/// registry.
fn run(
    path: &str,
    crate_name: &str,
    text: &str,
    oracles: &BTreeMap<String, OracleEntry>,
) -> Vec<Finding> {
    let file = SourceFile::parse(path, crate_name, FileKind::Lib, text);
    analyze(&[file], &Docs::default(), oracles)
}

fn new_rule_findings<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.status == Status::New)
        .collect()
}

/// The fixture oracle's registry key: the qualified name plus the pretend
/// workspace path the file is parsed under.
const ORACLE_PATH: &str = "crates/linalg/src/matrix.rs";
const ORACLE_KEY: &str = "Matrix::matmul_reference crates/linalg/src/matrix.rs";

/// Fingerprint of `Matrix::matmul_reference` as written in a fixture.
fn fixture_hash(text: &str) -> String {
    let file = SourceFile::parse(ORACLE_PATH, "pnc-linalg", FileKind::Lib, text);
    let item = file
        .fns
        .iter()
        .find(|f| f.qual == "Matrix::matmul_reference")
        .expect("fixture declares the oracle fn");
    fn_fingerprint(&file.tokens, item)
}

fn registry(hash: &str, justification: &str) -> BTreeMap<String, OracleEntry> {
    let mut m = BTreeMap::new();
    m.insert(
        ORACLE_KEY.to_string(),
        OracleEntry {
            hash: hash.to_string(),
            justification: justification.to_string(),
        },
    );
    m
}

#[test]
fn unedited_oracle_matches_its_pinned_hash() {
    let frozen = include_str!("fixtures/oracle_frozen.rs");
    let oracles = registry(&fixture_hash(frozen), "fixture freeze");
    let findings = run(ORACLE_PATH, "pnc-linalg", frozen, &oracles);
    // The pinned fn is clean; the only oracle-freeze findings are the
    // *other* required oracles this one-file workspace cannot contain,
    // reported against the registry file itself.
    let freeze = new_rule_findings(&findings, "oracle-freeze");
    assert_eq!(freeze.len(), REQUIRED_ORACLES.len() - 1, "{freeze:#?}");
    assert!(
        freeze
            .iter()
            .all(|f| f.path == "lint_baseline.json" && f.message.contains("is not pinned")),
        "{freeze:#?}"
    );
}

#[test]
fn edited_oracle_without_hash_update_is_a_finding() {
    let frozen = include_str!("fixtures/oracle_frozen.rs");
    let edited = include_str!("fixtures/oracle_edited.rs");
    assert_ne!(
        fixture_hash(frozen),
        fixture_hash(edited),
        "the edited fixture must actually change the body tokens"
    );
    // Registry still pins the ORIGINAL body's hash — the edit went in
    // without `update-oracles --justify`.
    let oracles = registry(&fixture_hash(frozen), "fixture freeze");
    let findings = run(ORACLE_PATH, "pnc-linalg", edited, &oracles);
    let on_file: Vec<_> = new_rule_findings(&findings, "oracle-freeze")
        .into_iter()
        .filter(|f| f.path == ORACLE_PATH)
        .collect();
    assert_eq!(on_file.len(), 1, "{on_file:#?}");
    assert!(
        on_file[0].message.contains("was edited") && on_file[0].message.contains("update-oracles"),
        "{}",
        on_file[0].message
    );
}

#[test]
fn oracle_registry_entries_require_a_justification() {
    let frozen = include_str!("fixtures/oracle_frozen.rs");
    let oracles = registry(&fixture_hash(frozen), "   ");
    let findings = run(ORACLE_PATH, "pnc-linalg", frozen, &oracles);
    let freeze = new_rule_findings(&findings, "oracle-freeze");
    assert!(
        freeze
            .iter()
            .any(|f| f.path == ORACLE_PATH && f.message.contains("no justification")),
        "{freeze:#?}"
    );
}

#[test]
fn deleted_oracle_fn_is_a_finding() {
    // The registry pins the oracle, but the file no longer declares it.
    let oracles = registry("0000000000000000", "fixture freeze");
    let findings = run(ORACLE_PATH, "pnc-linalg", "pub struct Matrix;\n", &oracles);
    let freeze = new_rule_findings(&findings, "oracle-freeze");
    assert!(
        freeze
            .iter()
            .any(|f| f.path == ORACLE_PATH && f.message.contains("no longer exists")),
        "{freeze:#?}"
    );
}

#[test]
fn panic_reachability_reports_the_shortest_route() {
    let text = include_str!("fixtures/panic_reach.rs");
    let findings = run(
        "crates/serve/src/frames.rs",
        "pnc-serve",
        text,
        &BTreeMap::new(),
    );
    let reach = new_rule_findings(&findings, "panic-reachability");
    // Exactly two: the `[]` in `inner` and the unwrap in `direct`. The
    // orphan unwrap and the test-module panic stay quiet.
    assert_eq!(reach.len(), 2, "{reach:#?}");
    let indexing = reach
        .iter()
        .find(|f| f.message.contains("`[]` indexing"))
        .expect("indexing site reported");
    // `inner` is reachable via entry -> outer -> inner (2 calls) and via
    // shortcut -> inner (1 call); the finding must carry the short route.
    assert!(
        indexing.message.contains("`shortcut -> inner` (1 call)"),
        "{}",
        indexing.message
    );
    let direct = reach
        .iter()
        .find(|f| f.message.contains(".unwrap()"))
        .expect("unwrap site reported");
    assert!(
        direct.message.contains("inside pub fn `direct` itself"),
        "{}",
        direct.message
    );
}

#[test]
fn panic_reachability_indexing_sites_are_crate_scoped() {
    // The same fixture parsed as a numeric crate: `[]` indexing is exempt
    // there (loop-bounded by construction), so only the unwraps count.
    let text = include_str!("fixtures/panic_reach.rs");
    let findings = run(
        "crates/linalg/src/frames.rs",
        "pnc-linalg",
        text,
        &BTreeMap::new(),
    );
    let reach = new_rule_findings(&findings, "panic-reachability");
    assert_eq!(reach.len(), 1, "{reach:#?}");
    assert!(
        reach[0].message.contains(".unwrap()"),
        "{}",
        reach[0].message
    );
}

#[test]
fn lock_across_blocking_flags_the_held_guard_only() {
    let text = include_str!("fixtures/lock_blocking.rs");
    let findings = run(
        "crates/serve/src/pool.rs",
        "pnc-serve",
        text,
        &BTreeMap::new(),
    );
    let locks = new_rule_findings(&findings, "lock-across-blocking");
    // `bad_hold` only; `scoped`, `dropped`, and `waiting` are the three
    // compliant idioms.
    assert_eq!(locks.len(), 1, "{locks:#?}");
    assert!(
        locks[0].message.contains("`guard`") && locks[0].message.contains("flush"),
        "{}",
        locks[0].message
    );
}

#[test]
fn unordered_float_reduction_catches_both_scope_aware_shapes() {
    let text = include_str!("fixtures/unordered_float.rs");
    let findings = run(
        "crates/core/src/reduce.rs",
        "pnc-core",
        text,
        &BTreeMap::new(),
    );
    let unordered = new_rule_findings(&findings, "unordered-float-reduction");
    // The deferred `.sum()` and the captured `total +=`; `collected` and
    // `serial` stay quiet.
    assert_eq!(unordered.len(), 2, "{unordered:#?}");
    assert!(
        unordered.iter().any(|f| f.message.contains("`chain`")),
        "{unordered:#?}"
    );
    assert!(
        unordered.iter().any(|f| f.message.contains("`total`")),
        "{unordered:#?}"
    );
}
