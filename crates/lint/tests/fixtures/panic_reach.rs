//! Fixture for panic-reachability: seeded panics reachable from the pub
//! API (via the shortest of several routes), plus unreachable and
//! test-only panics that must stay quiet.

/// Reaches `inner` the long way round: entry -> outer -> inner.
pub fn entry(bytes: &[u8]) -> u8 {
    outer(bytes)
}

/// Reaches `inner` directly — the SHORTEST path the finding must report.
pub fn shortcut(bytes: &[u8]) -> u8 {
    inner(bytes)
}

fn outer(bytes: &[u8]) -> u8 {
    inner(bytes)
}

fn inner(bytes: &[u8]) -> u8 {
    bytes[0]
}

/// A panic site inside the pub fn itself (distance zero).
pub fn direct(v: Option<u8>) -> u8 {
    v.unwrap()
}

/// Not called by any pub fn — its unwrap is unreachable from the API.
fn orphan(v: Option<u8>) -> u8 {
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_panics_are_fine() {
        assert_eq!(super::orphan(Some(3)), 3);
        panic!("loud test failure");
    }
}
