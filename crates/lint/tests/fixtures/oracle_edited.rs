//! Fixture: `oracle_frozen.rs` after a drive-by edit to the oracle body.
//! Same file layout, same signature — only the body tokens changed, which
//! must trip `oracle-freeze` against a registry pinning the original hash.

pub struct Matrix;

impl Matrix {
    /// The pinned reference body (pretend triple-loop matmul).
    pub fn matmul_reference(a: f64, b: f64) -> f64 {
        let mut acc = 1e-12;
        acc += a * b;
        acc
    }
}
