//! Fixture: a pretend frozen oracle. The integration test pins this body's
//! fingerprint in a registry and checks that the unedited file is clean.

pub struct Matrix;

impl Matrix {
    /// The pinned reference body (pretend triple-loop matmul).
    pub fn matmul_reference(a: f64, b: f64) -> f64 {
        let mut acc = 0.0;
        acc += a * b;
        acc
    }
}
