//! Fixture: seeded `no-wallclock` violations plus exempt contexts.
//! Mentioning Instant::now in this comment must NOT be flagged.

/// Seeded violation: monotonic clock read (1 finding).
pub fn elapsed_nanos() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

/// Seeded violations: wall-clock type mentions (2 findings — return type
/// and body).
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

/// Not flagged: the forbidden names only appear inside a string literal.
pub fn describe() -> &'static str {
    "Instant::now and SystemTime are banned"
}

/// Not flagged: `Instant` without `::now` is just a word.
pub fn instant_coffee() -> &'static str {
    "Instant"
}

#[cfg(test)]
mod tests {
    /// Not flagged: test code may time things.
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
        let _ = std::time::SystemTime::now();
    }
}
