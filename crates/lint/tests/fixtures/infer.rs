//! Fixture: the compiled-inference observability surface, checked against
//! the REAL workspace docs (not inline fixture tables). Every name here
//! ships in `pnc-core::infer`, so the doc/code consistency rules must stay
//! completely quiet — a finding on this file means docs/METRICS.md or the
//! README env-var table lost a row the code still carries.

use pnc_obs::Counter;

/// Plans compiled over the process lifetime.
pub static PLANS_COMPILED: Counter = Counter::new("infer.plans_compiled");

/// Rows pushed through any compiled plan.
pub static SAMPLES: Counter = Counter::new("infer.samples");

/// Batched inference calls.
pub static BATCHES: Counter = Counter::new("infer.batches");

/// Precision selection, as `CompiledPnn::compile_from_env` reads it.
pub fn precision_from_env() -> Option<String> {
    std::env::var("PNC_INFER_PRECISION").ok()
}
