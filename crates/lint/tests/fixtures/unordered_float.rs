//! Fixture for unordered-float-reduction: the two scope-aware shapes the
//! line-local `ordered-reduction` rule cannot see, next to the compliant
//! versions.

/// BAD (a): the parallel chain is bound, then reduced two lines later —
/// no single line contains both the adapter and the reduction.
pub fn deferred(xs: &[f64]) -> f64 {
    let chain = xs.par_iter().map(|x| x * 2.0);
    chain.sum()
}

/// BAD (b): a captured accumulator mutated inside the parallel chain.
pub fn captured(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    xs.par_iter().for_each(|x| {
        total += x;
    });
    total
}

/// OK: the chain is collected (ordered) before the serial reduction.
pub fn collected(xs: &[f64]) -> f64 {
    let rows: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    rows.iter().sum()
}

/// OK: fully serial accumulation.
pub fn serial(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}
