//! Fixture: a compliant crate root (0 findings).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Placeholder item.
pub fn noop() {}
