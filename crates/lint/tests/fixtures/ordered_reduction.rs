//! Fixture: seeded `ordered-reduction` violation and the deterministic
//! patterns that must stay clean.

use rayon::prelude::*;

/// Seeded violation: `.sum()` chained on a parallel iterator — the
/// floating-point reduction order depends on scheduling (1 finding).
pub fn bad_parallel_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

/// Not flagged: the fold runs serially *inside* the per-item closure; the
/// parallel combinator itself is a collect.
pub fn ok_serial_fold_per_item(xss: &[Vec<f64>]) -> Vec<f64> {
    xss.par_iter()
        .map(|xs| xs.iter().fold(0.0, |a, b| a + b))
        .collect()
}

/// Not flagged: fully serial reduction.
pub fn ok_serial_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
