//! Fixture: every way a suppression comment can go stale or wrong
//! (4 `suppression-hygiene` findings).

// pnc-lint allow(no-panic-in-lib) — malformed: the colon after pnc-lint is missing
/// Near-miss marker above: reported as malformed.
pub fn malformed() {}

// pnc-lint: allow(not-a-rule) — the rule id does not exist
/// Unknown rule id above: reported.
pub fn unknown_rule() {}

// pnc-lint: allow(no-wallclock) — nothing on the next line reads a clock
/// Unused suppression above: reported so dead comments get cleaned up.
pub fn unused() {}

// pnc-lint: allow(no-panic-in-lib)
/// Reason-less suppression above: reported as malformed.
pub fn missing_reason() {}
