//! Fixture: seeded `no-hash-iteration` violations for a numeric crate.

use std::collections::HashMap;

/// Seeded violations: `HashMap` appears in the `use` above, in the return
/// type, and in the constructor call (3 findings in a numeric crate).
pub fn histogram(xs: &[u32]) -> HashMap<u32, u32> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    /// Not flagged: test code may use hash containers.
    #[test]
    fn hashes_in_tests_are_fine() {
        let mut s = std::collections::HashSet::new();
        s.insert(1u32);
    }
}
