//! Fixture: metric constructors and environment reads for the doc/code
//! consistency rules. The companion docs live inline in the test file.

use pnc_obs::{Counter, Histogram};

/// Documented in the fixture METRICS table: no finding.
pub static GOOD: Counter = Counter::new("fixture.documented");

/// Seeded violation: constructed but absent from the fixture METRICS table.
pub static DRIFTED: Histogram = Histogram::new("fixture.undocumented");

/// Documented in the fixture README table: no finding.
pub fn read_documented() -> Option<String> {
    std::env::var("PNC_FIXTURE_DOCUMENTED").ok()
}

/// Seeded violation: read but absent from the fixture README table.
pub fn read_undocumented() -> Option<String> {
    std::env::var("PNC_FIXTURE_UNDOCUMENTED").ok()
}
