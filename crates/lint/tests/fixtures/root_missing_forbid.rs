//! Fixture: a crate root that dropped `#![forbid(unsafe_code)]`
//! (1 `forbid-unsafe-kept` finding when parsed as a crate root).

#![deny(missing_docs)]

/// Placeholder item.
pub fn noop() {}
