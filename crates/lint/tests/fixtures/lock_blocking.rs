//! Fixture for lock-across-blocking: a guard held across blocking I/O
//! (flagged) next to the three correct idioms (scoped block, explicit
//! drop, and a Condvar consuming the guard) that must stay quiet.

pub struct Pool {
    state: std::sync::Mutex<Vec<u8>>,
    ready: std::sync::Condvar,
}

impl Pool {
    /// BAD: `guard` is live across `.flush()` — one stalled peer wedges
    /// every thread contending for `state`.
    pub fn bad_hold(&self, stream: &mut std::net::TcpStream) {
        let guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let _ = std::io::Write::flush(stream);
        drop(guard);
    }

    /// OK: the guard dies at the inner block's close brace.
    pub fn scoped(&self, worker: std::thread::JoinHandle<()>) {
        let taken = {
            let mut guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        let _ = worker.join();
        let _ = taken;
    }

    /// OK: explicit drop before the blocking call.
    pub fn dropped(&self, stream: &mut std::net::TcpStream) {
        let guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        drop(guard);
        let _ = std::io::Write::flush(stream);
    }

    /// OK: `Condvar::wait` consumes the guard by value — the canonical
    /// sleep, not a hold-across-block.
    pub fn waiting(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.is_empty() {
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}
