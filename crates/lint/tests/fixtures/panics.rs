//! Fixture: seeded `no-panic-in-lib` violations, a reasoned suppression,
//! and the test-code exemption.

/// Seeded violation: `.unwrap()`.
pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Seeded violation: `.expect()`.
pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

/// Seeded violation: `panic!`.
pub fn bad_panic() {
    panic!("boom");
}

/// Seeded violation: `unreachable!`.
pub fn bad_unreachable(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

/// Suppressed, with a reason: not counted as a new finding.
pub fn suppressed_unwrap(x: Option<u32>) -> u32 {
    // pnc-lint: allow(no-panic-in-lib) — fixture: demonstrates a reasoned suppression
    x.unwrap()
}

/// Not flagged: `expect` without a leading dot is just a function name.
pub fn expect(x: u32) -> u32 {
    x
}

#[cfg(test)]
mod tests {
    /// Not flagged: tests panic on failure by design.
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3u32).unwrap(), 3);
        Some(1u32).expect("present");
    }
}
