//! Self-check: the analyzer must run clean on the real workspace (modulo
//! the checked-in ratchet baseline). This is the same invariant the CI
//! `lint` job enforces via `pnc-lint check`; keeping it as a test means
//! `cargo test` alone catches a regression.

use std::path::Path;

use pnc_lint::baseline::{self, Baseline};
use pnc_lint::{engine, workspace, Status};

#[test]
fn real_workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace discovery looks broken: only {} files",
        ws.files.len()
    );
    let baseline_path = root.join("lint_baseline.json");
    let parsed = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path).expect("baseline readable");
        Baseline::parse(&text).expect("baseline parses")
    } else {
        Baseline::default()
    };
    let mut findings = engine::analyze(&ws.files, &ws.docs, &parsed.oracles);
    baseline::apply(&mut findings, &parsed);

    let new: Vec<String> = findings
        .iter()
        .filter(|f| f.status == Status::New)
        .map(|f| f.to_string())
        .collect();
    assert!(
        new.is_empty(),
        "pnc-lint found unsuppressed, non-baselined findings:\n{}",
        new.join("\n")
    );
}

#[test]
fn baseline_registry_pins_every_required_oracle() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("lint_baseline.json"))
        .expect("lint_baseline.json exists at the workspace root");
    let parsed = Baseline::parse(&text).expect("baseline parses");
    for required in pnc_lint::structural::REQUIRED_ORACLES {
        let entry = parsed
            .oracles
            .iter()
            .find(|(k, _)| k.split_once(' ').map(|(q, _)| q) == Some(required))
            .map(|(_, e)| e)
            .unwrap_or_else(|| panic!("required oracle `{required}` is not in the registry"));
        assert_eq!(
            entry.hash.len(),
            16,
            "oracle `{required}` has no 16-hex pinned hash: {:?}",
            entry.hash
        );
        assert!(
            !entry.justification.trim().is_empty(),
            "oracle `{required}` is pinned without a justification"
        );
    }
}

#[test]
fn docs_are_loaded_for_cross_checks() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = workspace::load(&root).expect("workspace loads");
    assert!(ws.docs.metrics.is_some(), "docs/METRICS.md not found");
    assert!(ws.docs.readme.is_some(), "README.md not found");
}
