//! Experiment harness for the paper's evaluation section.
//!
//! Each table and figure has a binary that regenerates it:
//!
//! | target | paper content |
//! |---|---|
//! | `table1` | Tab. I — feasible design space of the nonlinear circuit |
//! | `fig2` | Fig. 2 — characteristic curves of ptanh / negative-weight circuits |
//! | `fig4` | Fig. 4 — curve fitting (left) and surrogate parity (right) |
//! | `table2` | Tab. II — accuracy ± std on the 13 benchmark datasets |
//! | `table3` | Tab. III — ablation summary and headline improvements |
//!
//! The binaries default to a **scaled-down budget** sized for a single-core
//! machine (documented in `EXPERIMENTS.md`); pass `--full` for the paper's
//! settings (10 seeds, patience 5000, `N_train` = 20, `N_test` = 100 — hours
//! of CPU time).
//!
//! The Criterion benches (`cargo bench --workspace`) measure the substrate
//! throughput: DC operating points, curve fits, autodiff passes, surrogate
//! inference and pNN training epochs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod summary;

pub use experiment::{
    default_surrogate, run_table2, run_table2_parallel, Arm, Budget, CellResult, DatasetRow, Table2,
};
pub use summary::{headline_improvements, summarize, Table3};
