//! Serving-layer load test: the `pnc-serve` micro-batching front over a
//! trained Iris network. Results go to `BENCH_serving.json` at the repo
//! root, with the `serve.*` metrics summary beside it in
//! `BENCH_serving_metrics.json`.
//!
//! Three phases:
//!
//! 1. **correctness** — every held-out row served through the batching
//!    server (and once more over the framed-TCP hop) is compared against a
//!    direct single-sample [`pnc_core::InferencePlan`] call with exact f64
//!    bit equality. `bit_identical` and `tcp_round_trip` in the report are
//!    hard floors in `scripts/check_bench_serving.sh`.
//! 2. **serial** — the single-request-at-a-time server (`max_batch = 1`:
//!    every dispatch carries exactly one request) under the same 8-client
//!    concurrent load the batching server faces: the no-coalescing
//!    baseline throughput and latency.
//! 3. **load** — the batching server (`max_batch = 32`, zero dwell =
//!    adaptive drain-what's-queued coalescing, same worker count) hammered
//!    by concurrent client threads. The headline `batching_speedup`
//!    (8-client batched throughput over the 8-client one-at-a-time
//!    baseline) must stay ≥ 1: with everything else equal, coalescing may
//!    never be slower than one-at-a-time dispatch.
//!
//! The dwell knob trades latency for fuller batches under *open-loop*
//! traffic; under this benchmark's closed-loop clients (each waits for its
//! response before sending the next request) a dwell deadline only adds
//! latency, so the throughput phase runs it at zero and the correctness
//! phase exercises the non-zero-dwell path instead.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin serving -- [--quick]
//! ```

use pnc_core::{
    InferencePlan, LabeledData, PlanPrecision, Pnn, PnnArtifact, PnnConfig, TrainConfig, Trainer,
    VariationModel,
};
use pnc_datasets::generators::iris;
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_serve::{wire, ModelRegistry, ServeConfig, Server};
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig as STrain};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The served model, for report self-description.
#[derive(Debug, Serialize)]
struct ModelInfo {
    /// Benchmark task the network was trained on.
    dataset: String,
    /// Input features.
    in_dim: usize,
    /// Output classes.
    out_dim: usize,
    /// Registry-level plan precision.
    precision: String,
}

/// The batching policy under test.
#[derive(Debug, Serialize)]
struct ConfigInfo {
    max_batch: usize,
    max_wait_us: u64,
    queue_capacity: usize,
    worker_threads: usize,
}

/// One measured traffic phase.
#[derive(Debug, Serialize)]
struct PhaseResult {
    /// Concurrent client threads issuing requests.
    client_threads: usize,
    /// Requests issued across all clients.
    requests: usize,
    /// Requests answered successfully.
    completed: usize,
    /// Requests shed with a typed overload rejection.
    rejected: usize,
    /// Completed requests per second of wall time.
    requests_per_s: f64,
    /// Median per-request latency (enqueue → response), microseconds.
    p50_us: f64,
    /// Tail per-request latency, microseconds.
    p99_us: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// Physical cores on the measuring machine.
    machine_threads: usize,
    model: ModelInfo,
    config: ConfigInfo,
    /// The no-batching baseline: one client against a
    /// single-request-at-a-time server.
    serial: PhaseResult,
    /// The batching server under concurrent load, one entry per client
    /// count.
    load: Vec<PhaseResult>,
    /// Best loaded throughput over the serial baseline — the hard ≥ 1
    /// floor: batching may never lose to one-at-a-time serving.
    batching_speedup: f64,
    /// Whether every served response matched the direct single-sample plan
    /// call bit for bit.
    bit_identical: bool,
    /// Whether the framed-TCP hop also preserved exact bits.
    tcp_round_trip: bool,
}

fn logical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to [`logical_threads`] (same accounting as
/// the other bench bins).
fn physical_cores() -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical_threads();
    };
    let mut cores = std::collections::HashSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in info.lines().chain(std::iter::once("")) {
        if line.trim().is_empty() {
            if let (Some(p), Some(c)) = (package, core) {
                cores.insert((p, c));
            }
            package = None;
            core = None;
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => package = value.trim().parse().ok(),
            "core id" => core = value.trim().parse().ok(),
            _ => {}
        }
    }
    if cores.is_empty() {
        logical_threads()
    } else {
        cores.len()
    }
}

/// `p`-th percentile (0–100) of an ascending-sorted sample, nearest-rank.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Reference bits per test row from direct single-sample plan calls.
fn single_sample_reference(
    artifact: &PnnArtifact,
    rows: &[Vec<f64>],
) -> Result<Vec<Vec<u64>>, Box<dyn std::error::Error>> {
    let mut plan = InferencePlan::compile_artifact(artifact)?;
    let mut reference = Vec::with_capacity(rows.len());
    for row in rows {
        let x = Matrix::from_fn(1, row.len(), |_, j| row[j]);
        let out = plan.infer(&x)?;
        reference.push(out.row(0).iter().map(|v| v.to_bits()).collect());
    }
    Ok(reference)
}

/// Drives `client_threads × requests_per_client` requests through `server`
/// and measures completed throughput plus per-request latency percentiles.
/// Every successful response is bit-checked against `reference`; a mismatch
/// flips the returned flag.
fn drive_load(
    server: &Arc<Server>,
    rows: &Arc<Vec<Vec<f64>>>,
    reference: &Arc<Vec<Vec<u64>>>,
    client_threads: usize,
    requests_per_client: usize,
) -> (PhaseResult, bool) {
    let wall = Instant::now();
    let mut clients = Vec::new();
    for c in 0..client_threads {
        let server = Arc::clone(server);
        let rows = Arc::clone(rows);
        let reference = Arc::clone(reference);
        clients.push(std::thread::spawn(move || {
            let mut latencies_us = Vec::with_capacity(requests_per_client);
            let (mut completed, mut rejected) = (0usize, 0usize);
            let mut identical = true;
            for step in 0..requests_per_client {
                let i = (step + c * 3) % rows.len();
                let t = Instant::now();
                match server.classify("Iris", &rows[i]) {
                    Ok(scored) => {
                        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                        completed += 1;
                        let bits: Vec<u64> = scored.scores.iter().map(|v| v.to_bits()).collect();
                        if bits != reference[i] {
                            identical = false;
                        }
                    }
                    Err(pnc_serve::ServeError::Overloaded { .. }) => rejected += 1,
                    Err(e) => {
                        eprintln!("unexpected serving error: {e}");
                        identical = false;
                    }
                }
            }
            (latencies_us, completed, rejected, identical)
        }));
    }
    let mut latencies = Vec::new();
    let (mut completed, mut rejected) = (0usize, 0usize);
    let mut identical = true;
    for client in clients {
        let (lat, c, r, ok) = client.join().expect("client thread");
        latencies.extend(lat);
        completed += c;
        rejected += r;
        identical &= ok;
    }
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    (
        PhaseResult {
            client_threads,
            requests: client_threads * requests_per_client,
            completed,
            rejected,
            requests_per_s: completed as f64 / elapsed,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
        },
        identical,
    )
}

/// Best-of-`reps` [`drive_load`] by completed throughput — the same
/// best-of-N discipline as the other bench bins' `time_best`: transient
/// slowdowns (scheduler preemption, noisy neighbors) only ever subtract
/// throughput, so the max is the stable estimate.
fn drive_load_best(
    reps: usize,
    server: &Arc<Server>,
    rows: &Arc<Vec<Vec<f64>>>,
    reference: &Arc<Vec<Vec<u64>>>,
    client_threads: usize,
    requests_per_client: usize,
) -> (PhaseResult, bool) {
    let mut best: Option<PhaseResult> = None;
    let mut identical = true;
    for _ in 0..reps {
        let (phase, ok) = drive_load(server, rows, reference, client_threads, requests_per_client);
        identical &= ok;
        if best
            .as_ref()
            .is_none_or(|b| phase.requests_per_s > b.requests_per_s)
        {
            best = Some(phase);
        }
    }
    (best.expect("reps >= 1"), identical)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    eprintln!("building fixture surrogate ...");
    let data = build_dataset(&DatasetConfig {
        samples: if quick { 60 } else { 120 },
        sweep_points: if quick { 21 } else { 31 },
    })?;
    let surrogate = Arc::new(
        train_surrogate(
            &data,
            &STrain {
                layer_sizes: vec![10, 8, 4],
                max_epochs: if quick { 60 } else { 200 },
                patience: 100,
                ..STrain::default()
            },
        )?
        .0,
    );

    let ds = iris();
    let (train, val, test) = ds.split(7);
    let train_epochs = if quick { 2 } else { 6 };
    eprintln!(
        "training the {} network for {train_epochs} epoch(s) ...",
        ds.name
    );
    let config = PnnConfig::for_dataset(ds.num_features(), ds.num_classes).with_seed(7);
    let mut pnn = Pnn::new(config, surrogate)?;
    Trainer::new(TrainConfig {
        variation: VariationModel::None,
        n_train_mc: 1,
        n_val_mc: 1,
        max_epochs: train_epochs,
        patience: train_epochs,
        parallel: ParallelConfig::serial(),
        ..TrainConfig::default()
    })
    .train(
        &mut pnn,
        LabeledData::new(&train.features, &train.labels)?,
        LabeledData::new(&val.features, &val.labels)?,
    )?;

    // Export → registry: the deployment path the serving layer exists for.
    let artifact = PnnArtifact::from_pnn(&pnn, "Iris")?;
    let precision = PlanPrecision::F64;
    // Dwelling config for the correctness phase: a real deadline forces the
    // dwell path of the batcher under concurrent traffic.
    let dwell_config = ServeConfig {
        precision,
        max_batch: 32,
        max_wait: Duration::from_micros(200),
        queue_capacity: 1024,
        worker_threads: 2,
    };
    // Throughput config: zero dwell — adaptive coalescing of whatever the
    // closed-loop clients have queued (see the module docs) — and a single
    // worker, so the serial/batched ratio isolates dispatch coalescing
    // rather than queue-mutex contention between workers.
    let load_config = ServeConfig {
        max_wait: Duration::ZERO,
        worker_threads: 1,
        ..dwell_config.clone()
    };
    let mut registry = ModelRegistry::new(precision, load_config.max_batch);
    registry.insert(artifact.clone())?;

    let rows: Arc<Vec<Vec<f64>>> = Arc::new(
        (0..test.features.rows())
            .map(|i| test.features.row(i).to_vec())
            .collect(),
    );
    let reference = Arc::new(single_sample_reference(&artifact, &rows)?);

    // Phase 1: correctness — batched serving and the TCP hop vs direct bits.
    eprintln!("verifying bit identity through the batching server ...");
    let server = Arc::new(Server::start(&registry, dwell_config));
    let (_, mut bit_identical) = drive_load(&server, &rows, &reference, 4, rows.len());

    eprintln!("verifying bit identity over the framed-TCP hop ...");
    let tcp = wire::TcpServer::start(Arc::clone(&server), "127.0.0.1:0")?;
    let mut tcp_round_trip = true;
    {
        let mut client = wire::WireClient::connect(tcp.local_addr())?;
        for (i, row) in rows.iter().enumerate() {
            let scored = client.classify("Iris", row)?;
            let bits: Vec<u64> = scored.scores.iter().map(|v| v.to_bits()).collect();
            if bits != reference[i] {
                tcp_round_trip = false;
            }
        }
    }
    tcp.shutdown();
    server.shutdown();
    eprintln!("  in-process: {bit_identical}   tcp: {tcp_round_trip}");

    // Phase 2: the no-coalescing baseline — the same 8-client load against
    // a server that dispatches exactly one request per batch.
    let requests = if quick { 8_000 } else { 40_000 };
    let load_clients = 8usize;
    eprintln!(
        "one-at-a-time baseline, {load_clients} clients × {} requests ...",
        requests / load_clients
    );
    let serial_config = ServeConfig {
        max_batch: 1,
        ..load_config.clone()
    };
    let server = Arc::new(Server::start(&registry, serial_config));
    let (serial, ok) = drive_load_best(
        3,
        &server,
        &rows,
        &reference,
        load_clients,
        requests / load_clients,
    );
    bit_identical &= ok;
    server.shutdown();
    eprintln!(
        "  {:.0} req/s   p50 {:.1} µs   p99 {:.1} µs",
        serial.requests_per_s, serial.p50_us, serial.p99_us
    );

    // Phase 3: the batching server under the same concurrent load.
    let server = Arc::new(Server::start(&registry, load_config.clone()));
    let mut load = Vec::new();
    for client_threads in [2usize, load_clients] {
        let per_client = requests / client_threads;
        eprintln!("batched run: {client_threads} clients × {per_client} requests ...");
        let (phase, ok) =
            drive_load_best(3, &server, &rows, &reference, client_threads, per_client);
        bit_identical &= ok;
        eprintln!(
            "  {:.0} req/s   p50 {:.1} µs   p99 {:.1} µs   rejected {}",
            phase.requests_per_s, phase.p50_us, phase.p99_us, phase.rejected
        );
        load.push(phase);
    }
    server.shutdown();

    // Same client count on both sides of the ratio: coalescing vs
    // one-at-a-time dispatch, everything else equal.
    let loaded_at_parity = load
        .iter()
        .find(|p| p.client_threads == load_clients)
        .map(|p| p.requests_per_s)
        .unwrap_or(0.0);
    let batching_speedup = loaded_at_parity / serial.requests_per_s;

    let report = Report {
        machine_threads: physical_cores(),
        model: ModelInfo {
            dataset: ds.name.clone(),
            in_dim: artifact.in_dim,
            out_dim: artifact.out_dim,
            precision: precision.name().to_string(),
        },
        config: ConfigInfo {
            max_batch: load_config.max_batch,
            max_wait_us: load_config.max_wait.as_micros() as u64,
            queue_capacity: load_config.queue_capacity,
            worker_threads: load_config.worker_threads,
        },
        serial,
        load,
        batching_speedup,
        bit_identical,
        tcp_round_trip,
    };
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json");
    std::fs::write(&out, serde_json::to_string_pretty(&report)?)?;
    eprintln!("\nreport saved to {}", out.display());

    // End-of-run metrics summary next to the timing report: the `serve.*`
    // traffic counters behind the numbers above (see docs/METRICS.md).
    let metrics_out =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving_metrics.json");
    pnc_obs::write_summary(&metrics_out)?;
    eprintln!("metrics summary saved to {}", metrics_out.display());

    println!(
        "batching speedup vs single-request-at-a-time: {:.2}x \
         (bit-identical: {}, tcp: {})",
        report.batching_speedup, report.bit_identical, report.tcp_round_trip
    );
    Ok(())
}
