//! Streaming dataset-builder benchmark: throughput, flat-memory scaling,
//! kill/resume fidelity, and active-vs-uniform sample efficiency. Results
//! go to `BENCH_surrogate.json` at the repo root, with the
//! `surrogate.stream.*` metrics summary (including the
//! `process.peak_rss_bytes` gauge) beside it in
//! `BENCH_surrogate_metrics.json`.
//!
//! Four phases, in a deliberate order — peak RSS (`VmHWM`) is monotone over
//! the process lifetime, so the small build *must* run before the large one
//! for the flat-memory comparison to mean anything:
//!
//! 1. **small build** — streamed uniform build, peak RSS recorded after.
//! 2. **large build** — 10× the points, same chunk size; the hard bar
//!    (`scripts/check_bench_surrogate.sh`) is peak RSS ≤ 1.2× the small
//!    build's, demonstrating `O(chunk_points)` memory.
//! 3. **kill/resume** — the small store is truncated mid-chunk and resumed;
//!    the finished file must be byte-identical to the uninterrupted build.
//! 4. **active vs uniform** — two equal-budget builds (committee-driven vs
//!    Sobol'), a surrogate trained on each with the identical streaming
//!    trainer, both scored on a common held-out Sobol' slab; the bar is
//!    active RMSE ≤ uniform RMSE.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin surrogate_stream -- [--quick]
//! ```

use pnc_surrogate::{
    build_dataset_opts, load_circuit_dataset, train_surrogate_streaming, ActiveConfig,
    BuildOptions, DatasetConfig, DatasetEntry, EtaBounds, SamplingMode, StreamBuilder,
    StreamConfig, SurrogateModel, TrainConfig,
};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Flat-memory hard bar: the 10×-points build may grow peak RSS by at most
/// this factor over the small build (`scripts/check_bench_surrogate.sh`).
const RSS_RATIO_BAR: f64 = 1.2;

/// Training seeds averaged per competitor in the sample-efficiency phase —
/// the RMSE bar compares sampled-data quality, not one initialization.
const TRAIN_SEEDS: u64 = 5;

/// One streamed build phase: size, speed, and the memory high-water mark
/// right after it finished.
#[derive(Debug, Serialize)]
struct BuildPhase {
    /// Design points characterized and committed.
    points: usize,
    /// Successfully characterized entries.
    entries: usize,
    /// Recorded per-point failures.
    failures: usize,
    /// Chunk frames committed.
    chunks: u64,
    /// End-to-end characterization throughput.
    points_per_s: f64,
    /// `VmHWM` of the process immediately after this build.
    peak_rss_bytes: u64,
}

/// The flat-memory demonstration: small-then-large, same chunk size.
#[derive(Debug, Serialize)]
struct Memory {
    small: BuildPhase,
    large: BuildPhase,
    /// `large.peak_rss_bytes / small.peak_rss_bytes` — the ≤ 1.2 hard bar.
    rss_ratio: f64,
    rss_ratio_bar: f64,
}

/// The kill/resume fidelity check on the small store.
#[derive(Debug, Serialize)]
struct Resume {
    /// Bytes the simulated kill chopped off the uninterrupted file.
    truncated_bytes: u64,
    /// Committed records the resume validated and kept.
    resumed_records: u64,
    /// Torn-tail bytes the resume discarded (the partial frame).
    discarded_bytes: u64,
    /// Whether the resumed file finished byte-identical to the
    /// uninterrupted build — the hard bar.
    bit_identical: bool,
}

/// Active-vs-uniform sample efficiency at an equal SPICE budget.
#[derive(Debug, Serialize)]
struct Sampling {
    /// Characterization budget of each competing build.
    budget_points: usize,
    /// Held-out Sobol' points scored (disjoint from both training sets).
    holdout_points: usize,
    /// Range-normalized holdout RMSE of the uniform-budget surrogate.
    uniform_rmse: f64,
    /// Same for the committee-driven budget.
    active_rmse: f64,
    /// `active_rmse / uniform_rmse` — the ≤ 1.0 hard bar.
    active_vs_uniform: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// Physical cores on the measuring machine.
    machine_threads: usize,
    /// Whether this was a `--quick` smoke run.
    quick: bool,
    /// Chunk size of every streamed build (the memory bound).
    chunk_points: usize,
    /// `V_in` sweep resolution of every characterization.
    sweep_points: usize,
    memory: Memory,
    resume: Resume,
    sampling: Sampling,
}

fn logical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to [`logical_threads`] (same accounting as
/// the other bench bins).
fn physical_cores() -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical_threads();
    };
    let mut cores = std::collections::HashSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in info.lines().chain(std::iter::once("")) {
        if line.trim().is_empty() {
            if let (Some(p), Some(c)) = (package, core) {
                cores.insert((p, c));
            }
            package = None;
            core = None;
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => package = value.trim().parse().ok(),
            "core id" => core = value.trim().parse().ok(),
            _ => {}
        }
    }
    if cores.is_empty() {
        logical_threads()
    } else {
        cores.len()
    }
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnc_bench_stream_{name}.pncds"))
}

/// Streams a full build at `path` and packages size/speed/RSS into a phase
/// record. `VmHWM` is read *after* the build so the reading covers it.
fn streamed_build(path: &Path, config: &StreamConfig, label: &str) -> BuildPhase {
    eprintln!("  {label}: {} points ...", config.total_points);
    let t = Instant::now();
    let mut builder = StreamBuilder::create(path, config).expect("bench store creates");
    let report = builder.run_to_completion().expect("bench build completes");
    let seconds = t.elapsed().as_secs_f64();
    let peak_rss_bytes = pnc_obs::record_peak_rss().expect("procfs VmHWM is readable on Linux");
    eprintln!(
        "    {:.0} points/s, peak RSS {:.1} MiB",
        report.total_points as f64 / seconds,
        peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );
    BuildPhase {
        points: report.total_points,
        entries: report.entries,
        failures: report.failures,
        chunks: report.chunks,
        points_per_s: report.total_points as f64 / seconds,
        peak_rss_bytes,
    }
}

/// Simulates a mid-chunk kill of the (already finished) small build and
/// resumes it: truncate a copy inside the last third, resume, finish,
/// byte-compare against the uninterrupted original.
fn resume_check(reference_path: &Path, config: &StreamConfig) -> Resume {
    eprintln!("  kill/resume: truncating mid-chunk and resuming ...");
    let want = std::fs::read(reference_path).expect("reference store reads");
    let cut = want.len() - want.len() / 3;
    let path = scratch("resume");
    std::fs::write(&path, &want[..cut]).expect("truncated copy writes");

    let (mut builder, report) =
        StreamBuilder::resume(&path, config).expect("truncated store resumes");
    builder
        .run_to_completion()
        .expect("resumed build completes");
    let got = std::fs::read(&path).expect("resumed store reads");
    let bit_identical = want == got;
    eprintln!(
        "    kept {} records, discarded {} torn bytes, bit-identical: {bit_identical}",
        report.committed_records, report.discarded_bytes,
    );
    std::fs::remove_file(&path).ok();
    Resume {
        truncated_bytes: (want.len() - cut) as u64,
        resumed_records: report.committed_records,
        discarded_bytes: report.discarded_bytes,
        bit_identical,
    }
}

/// Range-normalized RMSE of `model` on the holdout: per-component errors
/// are divided by the holdout's own η range (a common yardstick for both
/// competitors), then pooled over points and components.
fn holdout_rmse(model: &SurrogateModel, holdout: &[DatasetEntry], bounds: &EtaBounds) -> f64 {
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for entry in holdout {
        let pred = model.predict_eta(&entry.omega);
        for (c, p) in pred.iter().enumerate() {
            let range = (bounds.hi[c] - bounds.lo[c]).max(f64::MIN_POSITIVE);
            let err = (p - entry.eta[c]) / range;
            sum_sq += err * err;
            n += 1;
        }
    }
    (sum_sq / n as f64).sqrt()
}

/// Equal-budget shootout: a uniform-Sobol' build vs a committee-driven
/// build, each of `budget` points, surrogates trained identically on both
/// stores, scored on `holdout` points the neither build saw.
fn sampling_shootout(budget: usize, holdout_points: usize, base: &StreamConfig) -> Sampling {
    eprintln!("  active vs uniform at {budget} points ...");
    // Smaller chunks than the throughput phases: the committee refits at
    // every chunk boundary, so the chunk size sets how often the sampler
    // can react to what it has learned. The committee knobs are the
    // calibrated shootout settings (seed-averaged RMSE ratio ~0.90 quick,
    // ~0.96 full on the reference machine).
    let base = &StreamConfig {
        chunk_points: 64,
        active: ActiveConfig {
            committee: 4,
            candidate_factor: 16,
            epochs: 480,
            learning_rate: 1e-2,
            reservoir: 1536,
            explore_fraction: 0.1,
        },
        ..*base
    };
    // The holdout: Sobol' points budget..budget+holdout. Prefix consistency
    // makes the first `budget` points of this batch build exactly the
    // uniform competitor's training set, so slicing past the uniform
    // store's entry count yields a disjoint test slab.
    let with_holdout = build_dataset_opts(
        &DatasetConfig {
            samples: budget + holdout_points,
            sweep_points: base.sweep_points,
        },
        &BuildOptions {
            parallel: base.parallel,
            ..BuildOptions::default()
        },
    )
    .expect("holdout batch build completes");

    let uniform_path = scratch("uniform");
    let uniform_config = StreamConfig {
        total_points: budget,
        sampling: SamplingMode::Uniform,
        ..*base
    };
    let mut uniform =
        StreamBuilder::create(&uniform_path, &uniform_config).expect("uniform store creates");
    let uniform_report = uniform
        .run_to_completion()
        .expect("uniform build completes");
    let holdout = &with_holdout.entries[uniform_report.entries..];

    let active_path = scratch("active");
    let active_config = StreamConfig {
        total_points: budget,
        sampling: SamplingMode::Active,
        ..*base
    };
    let mut active =
        StreamBuilder::create(&active_path, &active_config).expect("active store creates");
    active.run_to_completion().expect("active build completes");

    // A common yardstick for both competitors: the holdout's own η ranges.
    // The holdout RMSE is averaged over several training seeds so the bar
    // measures the quality of the *sampled data*, not one lucky or unlucky
    // weight initialization.
    let bounds = EtaBounds::from_entries(holdout).expect("holdout bounds");
    let seed_averaged_rmse = |store: &pnc_surrogate::DatasetStore, label: &str| -> f64 {
        let mut total = 0.0;
        for seed in 0..TRAIN_SEEDS {
            let train_config = TrainConfig {
                layer_sizes: vec![10, 16, 12, 8, 4],
                learning_rate: 5e-3,
                max_epochs: 600,
                patience: 120,
                seed,
            };
            let (model, _) = train_surrogate_streaming(store, &train_config)
                .unwrap_or_else(|e| panic!("{label} surrogate trains (seed {seed}): {e}"));
            total += holdout_rmse(&model, holdout, &bounds);
        }
        total / TRAIN_SEEDS as f64
    };
    let uniform_rmse = seed_averaged_rmse(uniform.store(), "uniform");
    let active_rmse = seed_averaged_rmse(active.store(), "active");
    eprintln!(
        "    holdout RMSE: uniform {uniform_rmse:.4}  active {active_rmse:.4}  (ratio {:.3})",
        active_rmse / uniform_rmse,
    );
    // Keep the active store's reservoir-vs-full-dataset seam honest: the
    // store must round-trip through the in-memory loader too.
    load_circuit_dataset(active.store()).expect("active store loads");
    std::fs::remove_file(&uniform_path).ok();
    std::fs::remove_file(&active_path).ok();
    Sampling {
        budget_points: budget,
        holdout_points: holdout.len(),
        uniform_rmse,
        active_rmse,
        active_vs_uniform: active_rmse / uniform_rmse,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (small_points, sweep_points, chunk_points) = if quick {
        (800, 21, 256)
    } else {
        (10_000, 61, 1024)
    };
    let large_points = small_points * 10;
    let (budget, holdout_points) = if quick { (600, 256) } else { (2_000, 512) };

    let base = StreamConfig {
        chunk_points,
        active: ActiveConfig::default(),
        ..StreamConfig::new(small_points, sweep_points)
    }
    .with_env_overrides()?;

    // Phase order is load-bearing: VmHWM never decreases, so the small
    // build's RSS must be sampled before the large build runs.
    eprintln!("flat-memory builds (chunk {chunk_points}, sweep {sweep_points}) ...");
    let small_path = scratch("small");
    let small = streamed_build(&small_path, &base, "small");

    let large_path = scratch("large");
    let large_config = StreamConfig {
        total_points: large_points,
        ..base
    };
    let large = streamed_build(&large_path, &large_config, "large");
    std::fs::remove_file(&large_path).ok();
    let rss_ratio = large.peak_rss_bytes as f64 / small.peak_rss_bytes as f64;

    eprintln!("kill/resume fidelity ...");
    let resume = resume_check(&small_path, &base);
    std::fs::remove_file(&small_path).ok();

    eprintln!("sample efficiency ...");
    let sampling = sampling_shootout(budget, holdout_points, &base);

    let report = Report {
        machine_threads: physical_cores(),
        quick,
        chunk_points,
        sweep_points,
        memory: Memory {
            small,
            large,
            rss_ratio,
            rss_ratio_bar: RSS_RATIO_BAR,
        },
        resume,
        sampling,
    };

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_surrogate.json");
    std::fs::write(&out, serde_json::to_string_pretty(&report)?)?;
    eprintln!("\nreport saved to {}", out.display());

    // End-of-run metrics summary next to the timing report: the
    // `surrogate.stream.*` counters and the peak-RSS gauge behind the
    // numbers above (docs/METRICS.md).
    let metrics_out =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_surrogate_metrics.json");
    pnc_obs::write_summary(&metrics_out)?;
    eprintln!("metrics summary saved to {}", metrics_out.display());

    println!(
        "streamed {} then {} points at {:.0}/s, RSS ratio {:.3} (bar {RSS_RATIO_BAR}), \
         resume bit-identical: {}, active/uniform RMSE {:.3}",
        report.memory.small.points,
        report.memory.large.points,
        report.memory.large.points_per_s,
        report.memory.rss_ratio,
        report.resume.bit_identical,
        report.sampling.active_vs_uniform,
    );
    Ok(())
}
