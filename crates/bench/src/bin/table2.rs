//! Regenerates **Tab. II** of the paper: accuracy ± std on the 13 benchmark
//! datasets for every combination of {fixed, learnable} nonlinear circuit ×
//! {nominal, variation-aware} training × test variation ∈ {5 %, 10 %}.
//!
//! The result is printed in the paper's layout and saved as JSON (consumed
//! by the `table3` binary).
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin table2 -- [--full] [--seeds N] \
//!     [--epochs N] [--ntest N] [--datasets name1,name2]
//! ```

use pnc_bench::{default_surrogate, run_table2, run_table2_parallel, Budget, Table2};
use pnc_datasets::benchmark_suite;
use std::path::Path;

fn print_table(table: &Table2) {
    println!(
        "TABLE II: RESULT OF THE EXPERIMENT ON {} BENCHMARK DATASETS",
        table.rows.len()
    );
    println!(
        "(budget: {} seeds, {} max epochs, N_train={}, N_test={})",
        table.budget.seeds.len(),
        table.budget.max_epochs,
        table.budget.n_train_mc,
        table.budget.n_test
    );
    println!();
    println!(
        "{:<26}|{:^31}|{:^31}|{:^31}|{:^31}",
        "", "fixed / nominal", "fixed / var-aware", "learnable / nominal", "learnable / var-aware"
    );
    println!(
        "{:<26}|{:^15}|{:^15}|{:^15}|{:^15}|{:^15}|{:^15}|{:^15}|{:^15}",
        "Dataset", "5%", "10%", "5%", "10%", "5%", "10%", "5%", "10%"
    );
    println!("{}", "-".repeat(26 + 8 * 16));
    let mut col_means = vec![Vec::new(); 8];
    let mut col_stds = vec![Vec::new(); 8];
    for row in &table.rows {
        print!("{:<26}", row.dataset);
        for (k, cell) in row.cells.iter().enumerate() {
            print!("|{:>7.3} ±{:>5.3} ", cell.stats.mean, cell.stats.std);
            col_means[k].push(cell.stats.mean);
            col_stds[k].push(cell.stats.std);
        }
        println!();
    }
    println!("{}", "-".repeat(26 + 8 * 16));
    print!("{:<26}", "Average");
    for k in 0..8 {
        print!(
            "|{:>7.3} ±{:>5.3} ",
            pnc_linalg::stats::mean(&col_means[k]),
            pnc_linalg::stats::mean(&col_stds[k])
        );
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = Budget::from_args(&args);

    let mut datasets = benchmark_suite();
    if let Some(filter) = args
        .iter()
        .position(|a| a == "--datasets")
        .and_then(|i| args.get(i + 1))
    {
        let wanted: Vec<&str> = filter.split(',').collect();
        datasets.retain(|d| {
            wanted
                .iter()
                .any(|w| d.name.to_lowercase().contains(&w.to_lowercase()))
        });
        if datasets.is_empty() {
            return Err(format!("no dataset matches {filter}").into());
        }
    }

    let surrogate = default_surrogate()?;
    eprintln!(
        "running {} datasets x 6 trainings (budget: {} seeds, {} epochs) ...",
        datasets.len(),
        budget.seeds.len(),
        budget.max_epochs
    );
    let table = if args.iter().any(|a| a == "--parallel") {
        run_table2_parallel(&datasets, surrogate, &budget)?
    } else {
        run_table2(&datasets, surrogate, &budget)?
    };
    print_table(&table);

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/table2.json");
    table.save(&out)?;
    eprintln!("\nresult saved to {}", out.display());
    Ok(())
}
