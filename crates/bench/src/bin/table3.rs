//! Regenerates **Tab. III** of the paper: the ablation summary (per-arm
//! averages over all datasets) plus the headline improvements of Sec. IV-D.
//!
//! Reuses `artifacts/table2.json` when present (produced by the `table2`
//! binary); otherwise runs the grid first.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin table3 -- [--full] [--rerun]
//! ```

use pnc_bench::{default_surrogate, headline_improvements, run_table2, summarize, Budget, Table2};
use pnc_datasets::benchmark_suite;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cache = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/table2.json");

    let table2 = if cache.exists() && !args.iter().any(|a| a == "--rerun" || a == "--full") {
        eprintln!("using cached grid result {}", cache.display());
        Table2::load(&cache)?
    } else {
        let budget = Budget::from_args(&args);
        let surrogate = default_surrogate()?;
        let table = run_table2(&benchmark_suite(), surrogate, &budget)?;
        table.save(&cache)?;
        table
    };

    let table3 = summarize(&table2);
    println!("TABLE III: SUMMARIZED RESULTS FROM ABLATION STUDY");
    println!();
    println!(
        "{:<16}{:<18}{:>16}{:>16}",
        "Learnable non-", "Variation-aware", "eps_test = 5%", "eps_test = 10%"
    );
    println!("{:<16}{:<18}", "linear circuit", "training");
    println!("{}", "-".repeat(66));
    for row in &table3.rows {
        println!(
            "{:<16}{:<18}{:>8.3} ±{:>5.3}{:>9.3} ±{:>5.3}",
            if row.arm.learnable { "yes" } else { "no" },
            if row.arm.variation_aware { "yes" } else { "no" },
            row.mean_5,
            row.std_5,
            row.mean_10,
            row.std_10
        );
    }

    let h = headline_improvements(&table3);
    println!();
    println!("headline improvements of the full method over the baseline (Sec. IV-D):");
    println!(
        "  accuracy:  {:+.1} % at 5 % variation, {:+.1} % at 10 % (paper: +19 % / +26 %)",
        h.accuracy_gain_5 * 100.0,
        h.accuracy_gain_10 * 100.0
    );
    println!(
        "  robustness (std reduction): {:.1} % at 5 %, {:.1} % at 10 % (paper: ~73 % / ~75 %)",
        h.std_reduction_5 * 100.0,
        h.std_reduction_10 * 100.0
    );
    Ok(())
}
