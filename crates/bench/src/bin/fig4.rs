//! Regenerates **Fig. 4** of the paper:
//!
//! * **left** — parameter fitting from simulated `(V_in, V_out)` samples to
//!   η: prints the sampled points, the fitted curve and the fit residual;
//! * **right** — the surrogate parity data: true vs predicted normalized η̃
//!   on the train/validation/test splits, reported as per-split MSE/R² plus
//!   a parity sample.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin fig4 [--samples N]
//! ```
//!
//! Besides the stdout tables, the run's observability counters (Newton
//! iterations, recovery-rung usage, LM effort — see `docs/METRICS.md`) are
//! saved to `artifacts/fig4_metrics.json`.

use pnc_fit::fit_ptanh;
use pnc_linalg::stats;
use pnc_spice::circuits::{characteristic_curve, NonlinearCircuitParams};
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig};
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let samples: usize = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1200);

    // ---- Left panel: one circuit, simulate + fit. ----
    println!("FIG 4 (left): simulated points vs fitted tanh-like curve");
    let params = NonlinearCircuitParams::nominal();
    let curve = characteristic_curve(&params, 41)?;
    let fit = fit_ptanh(&curve)?;
    println!(
        "omega = {:?}\nfitted eta = [{:.4}, {:.4}, {:.4}, {:.4}], rmse = {:.5} V",
        params.to_array(),
        fit.curve.eta[0],
        fit.curve.eta[1],
        fit.curve.eta[2],
        fit.curve.eta[3],
        fit.rmse
    );
    println!("v_in,v_out_simulated,v_out_fitted");
    for &(x, y) in curve.iter().step_by(2) {
        println!("{:.3},{:.4},{:.4}", x, y, fit.curve.eval(x));
    }

    // ---- Right panel: surrogate parity over the three splits. ----
    println!();
    println!("FIG 4 (right): surrogate parity (true vs predicted normalized eta)");
    eprintln!("building {samples}-point dataset and training the 13-layer surrogate ...");
    let data = build_dataset(&DatasetConfig {
        samples,
        sweep_points: 61,
    })?;
    let tally = data.failure_tally();
    println!(
        "characterized {} / {samples} points (failures: build {}, sweep {}, fit {})",
        data.entries.len(),
        tally.build,
        tally.sweep,
        tally.fit
    );
    for f in data.failures.iter().take(5) {
        println!("  failed sample {} at {:?}: {}", f.index, f.stage, f.cause);
    }
    let (model, report) = train_surrogate(&data, &TrainConfig::default())?;
    println!(
        "mse: train {:.5}, val {:.5}, test {:.5}; pooled test R2 {:.4}; {} epochs",
        report.train_mse, report.val_mse, report.test_mse, report.test_r2, report.epochs_run
    );

    let (train_idx, val_idx, test_idx) = data.split(0);
    for (split, idx) in [("train", train_idx), ("val", val_idx), ("test", test_idx)] {
        let mut truths = Vec::new();
        let mut preds = Vec::new();
        for &i in &idx {
            let e = &data.entries[i];
            let t = data.eta_bounds.normalize(&e.eta);
            let p = data.eta_bounds.normalize(&model.predict_eta(&e.omega));
            for k in 0..4 {
                truths.push(t[k]);
                preds.push(p[k]);
            }
        }
        println!(
            "split {split:>5}: n = {:4}, mse = {:.5}, R2 = {:.4}",
            idx.len(),
            stats::mse(&truths, &preds),
            stats::r_squared(&truths, &preds)
        );
    }

    println!("parity sample (split test, first 8 points): true_norm_eta -> predicted");
    let (_, _, test_idx) = data.split(0);
    for &i in test_idx.iter().take(8) {
        let e = &data.entries[i];
        let t = data.eta_bounds.normalize(&e.eta);
        let p = data.eta_bounds.normalize(&model.predict_eta(&e.omega));
        println!(
            "  [{:.3} {:.3} {:.3} {:.3}] -> [{:.3} {:.3} {:.3} {:.3}]",
            t[0], t[1], t[2], t[3], p[0], p[1], p[2], p[3]
        );
    }

    // End-of-run metrics summary: solver effort and robustness counters for
    // this figure's trajectory (deterministic across PNC_NUM_THREADS).
    let metrics_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&metrics_path)?;
    let metrics_path = metrics_path.join("fig4_metrics.json");
    pnc_obs::write_summary(&metrics_path)?;
    eprintln!("metrics summary saved to {}", metrics_path.display());
    Ok(())
}
