//! Extension experiment: lifetime (aging) evaluation, following the
//! direction of the paper's companion work \[5\] ("Aging-Aware Training for
//! Printed Neuromorphic Circuits", ICCAD 2022).
//!
//! Trains three networks on one dataset — nominal, variation-aware, and
//! variation-aware **plus aging-aware** — and sweeps accuracy over the
//! device lifetime as the printed conductances decay.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin aging -- [--dataset seeds] [--rate 0.15]
//! ```

use pnc_bench::default_surrogate;
use pnc_core::aging::{lifetime_accuracy, AgingAwareness, AgingModel};
use pnc_core::{train_best_of_seeds, LabeledData, PnnConfig, TrainConfig, VariationModel};
use pnc_datasets::benchmark_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let dataset_name = value_of("--dataset").unwrap_or_else(|| "seeds".into());
    let rate: f64 = value_of("--rate")
        .map(|v| v.parse())
        .transpose()?
        .unwrap_or(0.15);

    let dataset = benchmark_suite()
        .into_iter()
        .find(|d| d.name.to_lowercase().contains(&dataset_name.to_lowercase()))
        .ok_or_else(|| format!("unknown dataset {dataset_name}"))?;
    let (train, val, test) = dataset.split(42);
    let train_d = LabeledData::new(&train.features, &train.labels)?;
    let val_d = LabeledData::new(&val.features, &val.labels)?;
    let test_d = LabeledData::new(&test.features, &test.labels)?;

    let surrogate = default_surrogate()?;
    let aging_model = AgingModel::Exponential { rate };
    let lifetime = 10.0;
    let epsilon = 0.05;
    let config = PnnConfig::for_dataset(dataset.num_features(), dataset.num_classes);
    let budget = TrainConfig {
        max_epochs: 250,
        patience: 100,
        n_train_mc: 5,
        n_val_mc: 3,
        ..TrainConfig::default()
    };

    eprintln!(
        "dataset {} | exponential aging rate {rate} over lifetime {lifetime}",
        dataset.name
    );

    let arms: [(&str, TrainConfig); 3] = [
        ("nominal training", budget),
        (
            "variation-aware",
            TrainConfig {
                variation: VariationModel::Uniform { epsilon },
                ..budget
            },
        ),
        (
            "variation- + aging-aware",
            TrainConfig {
                variation: VariationModel::Uniform { epsilon },
                aging: Some(AgingAwareness {
                    model: aging_model,
                    lifetime,
                }),
                ..budget
            },
        ),
    ];

    let ages: Vec<f64> = (0..=10).map(|k| k as f64).collect();
    println!(
        "age,decay,{}",
        arms.map(|(n, _)| n.replace(' ', "_")).join(",")
    );

    let mut curves = Vec::new();
    for (name, train_cfg) in &arms {
        eprintln!("training: {name} ...");
        let (pnn, _) = train_best_of_seeds(
            &config,
            surrogate.clone(),
            train_cfg,
            train_d,
            val_d,
            &[1, 2, 3],
        )?;
        let curve = lifetime_accuracy(
            &pnn,
            test_d,
            &aging_model,
            &VariationModel::Uniform { epsilon },
            &ages,
            30,
            7,
        )?;
        curves.push(curve);
    }

    for (k, &age) in ages.iter().enumerate() {
        print!("{age:.1},{:.3}", curves[0][k].decay);
        for curve in &curves {
            print!(",{:.3}", curve[k].stats.mean);
        }
        println!();
    }
    eprintln!(
        "\nExpected shape: all arms degrade with age; the aging-aware arm\n\
         degrades the slowest (it traded some fresh accuracy for lifetime)."
    );
    Ok(())
}
