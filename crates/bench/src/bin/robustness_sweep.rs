//! Extension experiment: accuracy vs printing-variation level, beyond the
//! paper's two points (5 % and 10 %) — the robustness *curve* of the
//! baseline and the full method.
//!
//! Also covers the Gaussian-variation ablation: how sensitive are the
//! conclusions to the uniform-noise assumption of Sec. III-C?
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin robustness_sweep -- [--dataset iris]
//! ```

use pnc_bench::default_surrogate;
use pnc_core::{
    mc_evaluate, train_best_of_seeds, LabeledData, PnnConfig, TrainConfig, VariationModel,
};
use pnc_datasets::benchmark_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset_name = args
        .iter()
        .position(|a| a == "--dataset")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "iris".into());
    let dataset = benchmark_suite()
        .into_iter()
        .find(|d| d.name.to_lowercase().contains(&dataset_name.to_lowercase()))
        .ok_or_else(|| format!("unknown dataset {dataset_name}"))?;

    let (train, val, test) = dataset.split(42);
    let train_d = LabeledData::new(&train.features, &train.labels)?;
    let val_d = LabeledData::new(&val.features, &val.labels)?;
    let test_d = LabeledData::new(&test.features, &test.labels)?;
    let surrogate = default_surrogate()?;
    let config = PnnConfig::for_dataset(dataset.num_features(), dataset.num_classes);
    let budget = TrainConfig {
        max_epochs: 250,
        patience: 100,
        n_train_mc: 5,
        n_val_mc: 3,
        ..TrainConfig::default()
    };
    let seeds = [1u64, 2, 3];

    eprintln!("dataset {}", dataset.name);

    // Baseline: fixed circuit, nominal training.
    let (baseline, _) = train_best_of_seeds(
        &config.clone().with_fixed_nonlinearity(),
        surrogate.clone(),
        &TrainConfig {
            lr_omega: 0.0,
            ..budget
        },
        train_d,
        val_d,
        &seeds,
    )?;
    // Full method trained at 10 %.
    let (full, _) = train_best_of_seeds(
        &config,
        surrogate.clone(),
        &TrainConfig {
            variation: VariationModel::Uniform { epsilon: 0.10 },
            ..budget
        },
        train_d,
        val_d,
        &seeds,
    )?;

    println!(
        "test_eps,baseline_mean,baseline_std,full_mean,full_std,full_gauss_mean,full_gauss_std"
    );
    for k in 0..=8 {
        let eps = 0.025 * k as f64;
        let (b, f, fg);
        if eps == 0.0 {
            b = mc_evaluate(&baseline, test_d, &VariationModel::None, 1, 0)?;
            f = mc_evaluate(&full, test_d, &VariationModel::None, 1, 0)?;
            fg = f.clone();
        } else {
            b = mc_evaluate(
                &baseline,
                test_d,
                &VariationModel::Uniform { epsilon: eps },
                50,
                7,
            )?;
            f = mc_evaluate(
                &full,
                test_d,
                &VariationModel::Uniform { epsilon: eps },
                50,
                7,
            )?;
            // Gaussian with matched variance: σ = ε/√3.
            fg = mc_evaluate(
                &full,
                test_d,
                &VariationModel::Gaussian {
                    sigma: eps / 3.0_f64.sqrt(),
                },
                50,
                7,
            )?;
        }
        println!(
            "{eps:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
            b.mean, b.std, f.mean, f.std, fg.mean, fg.std
        );
    }
    eprintln!(
        "\nExpected shape: the baseline's accuracy decays and its spread grows\n\
         with eps much faster than the full method's; Gaussian noise of\n\
         matched variance behaves like the uniform model."
    );
    Ok(())
}
