//! Hot-path kernel benchmark: dense matmul throughput, variation-aware
//! epoch wall time with and without graph/buffer reuse, and modified-Newton
//! factorization reuse on the paper's Fig. 3 transfer-curve sweep. Results
//! go to `BENCH_kernels.json` at the repo root.
//!
//! Three sections:
//!
//! 1. **matmul** — GFLOP/s of the naive reference kernel, the cache-blocked
//!    kernel ([`Matrix::matmul`]), and the row-partitioned parallel kernel,
//!    all bit-identical to each other by construction.
//! 2. **epoch** — wall time of one MC training epoch (batch 128, single
//!    thread) on the pre-PR naive path (fresh `Graph` per draw, allocating
//!    backward and gradient accumulation) vs the reuse path (one graph +
//!    gradient store recycled via `reset`/`backward_into`/`add_assign`).
//! 3. **newton** — the Fig. 3 warm-started DC sweep with full-refactor
//!    Newton vs Jacobian-reuse Newton: iterations, LU factorizations, and
//!    sweep throughput.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin kernels -- [--quick]
//! ```

use pnc_autodiff::{GradStore, Graph};
use pnc_core::{LossKind, Pnn, PnnConfig};
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit, VDD};
use pnc_spice::sweep::linspace;
use pnc_spice::DcSolver;
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig as STrain};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One matrix size's throughput measurement (square `n × n` operands).
#[derive(Debug, Serialize)]
struct MatmulPoint {
    /// Operand dimension (`n × n` · `n × n`).
    size: usize,
    /// Naive triple-loop reference kernel.
    reference_gflops: f64,
    /// Cache-blocked serial kernel (the `Matrix::matmul` default).
    blocked_gflops: f64,
    /// Row-partitioned deterministic parallel kernel; `null` when the
    /// machine has a single physical core (a 1-thread "parallel" number
    /// would only measure pool overhead, not parallelism).
    parallel_gflops: Option<f64>,
}

#[derive(Debug, Serialize)]
struct MatmulSection {
    /// Cache block edge the blocked kernel ran with (`PNC_MATMUL_BLOCK`).
    block: usize,
    /// Worker threads used by the parallel rows (1 = parallel columns are
    /// skipped and emitted as `null`).
    parallel_threads: usize,
    results: Vec<MatmulPoint>,
}

#[derive(Debug, Serialize)]
struct EpochSection {
    /// Training batch rows.
    batch: usize,
    /// Monte-Carlo draws per epoch.
    n_mc: usize,
    /// Epochs per timed run.
    epochs: usize,
    /// Pre-PR path: fresh graph per draw, allocating backward/accumulate.
    naive_wall_ms: f64,
    /// Reuse path: one graph + store, `reset`/`backward_into`/`add_assign`.
    reuse_wall_ms: f64,
    /// `naive_wall_ms / reuse_wall_ms`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct NewtonSection {
    /// Operating points in the Fig. 3 transfer-curve sweep.
    sweep_points: usize,
    /// Newton iterations of the full-refactor sweep (= its factorizations).
    full_iterations: usize,
    /// Newton iterations of the Jacobian-reuse sweep.
    reuse_iterations: usize,
    /// LU factorizations of the Jacobian-reuse sweep.
    reuse_factorizations: usize,
    /// `reuse_iterations / reuse_factorizations` — the reuse win; > 1 means
    /// the factored Jacobian outlives single iterations.
    iterations_per_factorization: f64,
    /// Sweep throughput, full-refactor path.
    full_points_per_s: f64,
    /// Sweep throughput, Jacobian-reuse path.
    reuse_points_per_s: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// Physical cores on the measuring machine (unique `(physical id,
    /// core id)` pairs from `/proc/cpuinfo`; SMT siblings collapse).
    machine_threads: usize,
    /// `std::thread::available_parallelism` (logical CPUs), for context.
    machine_logical_threads: usize,
    matmul: MatmulSection,
    epoch: EpochSection,
    newton: NewtonSection,
}

fn logical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`. SMT siblings share both ids, so hyperthreads collapse
/// into one core. Falls back to [`logical_threads`] where the file is
/// absent or unparsable.
fn physical_cores() -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical_threads();
    };
    let mut cores = std::collections::HashSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in info.lines().chain(std::iter::once("")) {
        if line.trim().is_empty() {
            if let (Some(p), Some(c)) = (package, core) {
                cores.insert((p, c));
            }
            package = None;
            core = None;
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => package = value.trim().parse().ok(),
            "core id" => core = value.trim().parse().ok(),
            _ => {}
        }
    }
    if cores.is_empty() {
        logical_threads()
    } else {
        cores.len()
    }
}

/// Best-of-`reps` wall time of `f`, in milliseconds, after one warmup run.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn bench_matmul(quick: bool, parallel: &ParallelConfig, run_parallel: bool) -> MatmulSection {
    let sizes: &[usize] = if quick { &[48, 96] } else { &[64, 128, 256] };
    let reps = if quick { 3 } else { 5 };
    let mut results = Vec::new();
    for &n in sizes {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 17) as f64 / 16.0 - 0.4);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 13) as f64 / 12.0 - 0.5);
        let flops = 2.0 * (n as f64).powi(3);
        let gflops = |ms: f64| flops / (ms * 1e-3) / 1e9;
        let reference_ms = time_best(reps, || {
            a.matmul_reference(&b).expect("square operands conform");
        });
        let blocked_ms = time_best(reps, || {
            a.matmul(&b).expect("square operands conform");
        });
        let parallel_gflops = run_parallel.then(|| {
            let parallel_ms = time_best(reps, || {
                a.matmul_parallel(&b, parallel)
                    .expect("square operands conform");
            });
            gflops(parallel_ms)
        });
        let point = MatmulPoint {
            size: n,
            reference_gflops: gflops(reference_ms),
            blocked_gflops: gflops(blocked_ms),
            parallel_gflops,
        };
        let parallel_col = match point.parallel_gflops {
            Some(g) => format!("{g:>6.2}"),
            None => "  skip".to_string(),
        };
        eprintln!(
            "  {n:>4}³: reference {:>6.2}  blocked {:>6.2}  parallel {parallel_col} GFLOP/s",
            point.reference_gflops, point.blocked_gflops
        );
        results.push(point);
    }
    MatmulSection {
        block: pnc_linalg::kernels::block_size(),
        parallel_threads: if run_parallel {
            parallel.effective_threads()
        } else {
            1
        },
        results,
    }
}

/// One MC epoch on the pre-PR path: a fresh graph per draw, the allocating
/// `backward`, and allocating gradient accumulation.
fn epoch_naive(pnn: &Pnn, x: &Matrix, y: &[usize], n_mc: usize) {
    let mut acc: Vec<Matrix> = Vec::new();
    for _ in 0..n_mc {
        let mut g = Graph::new();
        let (scores, vars) = pnn.forward(&mut g, x, None).expect("forward");
        let loss = pnn
            .loss(&mut g, scores, y, LossKind::default())
            .expect("loss");
        let store = g.backward_reference(loss).expect("backward");
        let grads: Vec<Matrix> = vars
            .thetas
            .iter()
            .map(|v| store.get(*v).cloned().expect("theta gradient"))
            .collect();
        if acc.is_empty() {
            acc = grads;
        } else {
            acc = acc
                .iter()
                .zip(&grads)
                .map(|(a, b)| a.add(b).expect("same shape"))
                .collect();
        }
    }
    for m in &mut acc {
        m.scale_in_place(1.0 / n_mc as f64);
    }
}

/// The same epoch on the reuse path: one graph and one gradient store
/// recycled across draws, in-place accumulation.
fn epoch_reuse(
    pnn: &Pnn,
    x: &Matrix,
    y: &[usize],
    n_mc: usize,
    g: &mut Graph,
    store: &mut GradStore,
) {
    let mut acc: Vec<Matrix> = Vec::new();
    for _ in 0..n_mc {
        g.reset();
        let (scores, vars) = pnn.forward(g, x, None).expect("forward");
        let loss = pnn.loss(g, scores, y, LossKind::default()).expect("loss");
        g.backward_into(loss, store).expect("backward");
        if acc.is_empty() {
            acc = vars
                .thetas
                .iter()
                .map(|v| store.get(*v).cloned().expect("theta gradient"))
                .collect();
        } else {
            for (a, v) in acc.iter_mut().zip(&vars.thetas) {
                a.add_assign(store.get(*v).expect("theta gradient"))
                    .expect("same shape");
            }
        }
    }
    for m in &mut acc {
        m.scale_in_place(1.0 / n_mc as f64);
    }
}

fn bench_epoch(quick: bool) -> Result<EpochSection, Box<dyn std::error::Error>> {
    eprintln!("building fixture surrogate ...");
    let data = build_dataset(&DatasetConfig {
        samples: if quick { 60 } else { 120 },
        sweep_points: if quick { 21 } else { 31 },
    })?;
    let surrogate = Arc::new(
        train_surrogate(
            &data,
            &STrain {
                layer_sizes: vec![10, 8, 4],
                max_epochs: if quick { 60 } else { 200 },
                patience: 100,
                ..STrain::default()
            },
        )?
        .0,
    );
    let batch = 128;
    let n_mc = if quick { 4 } else { 8 };
    let epochs = if quick { 2 } else { 4 };
    let reps = if quick { 2 } else { 3 };
    let x = Matrix::from_fn(batch, 6, |i, j| ((i * 5 + j * 3) % 13) as f64 / 12.0);
    let y: Vec<usize> = (0..batch).map(|i| i % 3).collect();
    let pnn = Pnn::new(PnnConfig::for_dataset(6, 3), surrogate)?;

    eprintln!("timing {epochs} epoch(s) of {n_mc} MC draws at batch {batch}, 1 thread ...");
    let naive_wall_ms = time_best(reps, || {
        for _ in 0..epochs {
            epoch_naive(&pnn, &x, &y, n_mc);
        }
    });
    let mut g = Graph::new();
    let mut store = GradStore::new();
    let reuse_wall_ms = time_best(reps, || {
        for _ in 0..epochs {
            epoch_reuse(&pnn, &x, &y, n_mc, &mut g, &mut store);
        }
    });
    let speedup = naive_wall_ms / reuse_wall_ms;
    eprintln!("  naive {naive_wall_ms:>8.1} ms   reuse {reuse_wall_ms:>8.1} ms   ({speedup:.2}x)");
    Ok(EpochSection {
        batch,
        n_mc,
        epochs,
        naive_wall_ms,
        reuse_wall_ms,
        speedup,
    })
}

fn sweep_stats(
    reuse: bool,
    grid: &[f64],
    reps: usize,
) -> Result<(usize, usize, f64), Box<dyn std::error::Error>> {
    let mut ckt = PtanhCircuit::build(&NonlinearCircuitParams::nominal())?;
    ckt.set_solver(DcSolver {
        newton_reuse: reuse,
        ..DcSolver::new()
    });
    let wall_ms = time_best(reps, || {
        let mut c = ckt.clone();
        c.transfer_curve_solutions(grid).expect("sweep converges");
    });
    let sols = ckt.transfer_curve_solutions(grid)?;
    let iterations = sols.iter().map(|s| s.diagnostics().iterations).sum();
    let factorizations = sols.iter().map(|s| s.diagnostics().factorizations).sum();
    Ok((
        iterations,
        factorizations,
        grid.len() as f64 / (wall_ms * 1e-3),
    ))
}

fn bench_newton(quick: bool) -> Result<NewtonSection, Box<dyn std::error::Error>> {
    let points = if quick { 81 } else { 401 };
    let reps = if quick { 2 } else { 5 };
    let grid = linspace(0.0, VDD, points);
    eprintln!("timing the {points}-point Fig. 3 transfer-curve sweep ...");
    let (full_iterations, full_factorizations, full_points_per_s) =
        sweep_stats(false, &grid, reps)?;
    debug_assert_eq!(full_iterations, full_factorizations);
    let (reuse_iterations, reuse_factorizations, reuse_points_per_s) =
        sweep_stats(true, &grid, reps)?;
    let iterations_per_factorization =
        reuse_iterations as f64 / (reuse_factorizations.max(1)) as f64;
    eprintln!(
        "  full: {full_iterations} iters = factorizations ({full_points_per_s:.0} points/s)\n  \
         reuse: {reuse_iterations} iters / {reuse_factorizations} factorizations = \
         {iterations_per_factorization:.2} ({reuse_points_per_s:.0} points/s)"
    );
    Ok(NewtonSection {
        sweep_points: points,
        full_iterations,
        reuse_iterations,
        reuse_factorizations,
        iterations_per_factorization,
        full_points_per_s,
        reuse_points_per_s,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let machine = physical_cores();
    let run_parallel = machine > 1;
    if !run_parallel {
        eprintln!("single physical core detected: parallel matmul columns will be null");
    }

    eprintln!("matmul throughput ...");
    let matmul = bench_matmul(quick, &ParallelConfig::automatic(), run_parallel);
    let epoch = bench_epoch(quick)?;
    let newton = bench_newton(quick)?;

    let report = Report {
        machine_threads: machine,
        machine_logical_threads: logical_threads(),
        matmul,
        epoch,
        newton,
    };
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&out, serde_json::to_string_pretty(&report)?)?;
    eprintln!("\nreport saved to {}", out.display());

    println!(
        "epoch reuse speedup: {:.2}x; Newton iterations per factorization: {:.2}",
        report.epoch.speedup, report.newton.iterations_per_factorization
    );
    Ok(())
}
