//! Walks the processing chain of **Fig. 5** — from the raw learnable
//! parameter 𝔴 to the printable component values and the resulting
//! activation curve — printing every intermediate quantity. (Fig. 5 itself
//! is a flowchart; this binary is its executable form.)
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin fig5
//! ```

use pnc_autodiff::Graph;
use pnc_bench::default_surrogate;
use pnc_core::NonlinearCircuit;
use pnc_spice::circuits::NonlinearCircuitParams;
use pnc_surrogate::DesignSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let surrogate = default_surrogate()?;
    let circuit = NonlinearCircuit::learnable_from(NonlinearCircuitParams::nominal());

    println!("FIG 5: processing of the learnable parameter w for a surrogate model\n");

    // Stage 0: the raw learnable parameter (pre-sigmoid).
    let NonlinearCircuit::Learnable { w } = &circuit else {
        unreachable!("constructed learnable");
    };
    let raw: Vec<f64> = w.value().as_slice().to_vec();
    println!("learnable w (raw):        {}", fmt(&raw));

    // Stage 1: sigmoid — normalized values in (0, 1).
    let sig: Vec<f64> = raw.iter().map(|x| 1.0 / (1.0 + (-x).exp())).collect();
    println!("after sigmoid (0..1):     {}", fmt(&sig));
    println!("  layout: [R1~, R3~, R5~, W~, L~, k1, k2]");

    // Stage 2: denormalize + reassemble + clip = printable values.
    let omega = circuit.printable_omega();
    println!("\nprintable omega:");
    let space = DesignSpace::paper();
    let names = ["R1", "R2", "R3", "R4", "R5", "W", "L"];
    for (k, name) in names.iter().enumerate() {
        println!(
            "  {name:<3} = {:>12.4}   (feasible [{:.0e}, {:.0e}])",
            omega[k], space.lo[k], space.hi[k]
        );
    }
    println!(
        "  (R2 = k1*R1 = {:.1}, R4 = k2*R3 = {:.1}, clipped to Tab. I)",
        omega[1], omega[3]
    );

    // Stage 3: extend + normalize = surrogate input.
    let ext = space.normalize_omega(&omega);
    println!("\nsurrogate input (normalized, ratio-extended):");
    println!("  {}", fmt(&ext));

    // Stage 4: surrogate -> eta, and a differentiability check.
    let eta = surrogate.predict_eta(&omega);
    println!(
        "\npredicted eta = [{:.4}, {:.4}, {:.4}, {:.4}]",
        eta[0], eta[1], eta[2], eta[3]
    );
    println!(
        "activation: V_a = {:.3} + {:.3} * tanh((V_z - {:.3}) * {:.3})",
        eta[0], eta[1], eta[2], eta[3]
    );

    let mut g = Graph::new();
    let w_var = circuit.register(&mut g).expect("learnable");
    let eta_node = circuit.eta_graph(&mut g, Some(w_var), &surrogate, None)?;
    let loss = g.sum(eta_node);
    let grads = g.backward(loss)?;
    let gw = grads.get(w_var).expect("gradient");
    println!(
        "\nd(sum eta)/dw = {}  (the chain is differentiable end to end,\nwhich is what lets the pNN learn the physical circuit)",
        fmt(gw.as_slice())
    );
    Ok(())
}

fn fmt(xs: &[f64]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| format!("{x:+.3}")).collect();
    format!("[{}]", parts.join(", "))
}
