//! Extension experiment: printed inference latency. Transient-simulates the
//! two-stage nonlinear circuit with its electrolyte gate capacitances and
//! reports the step-response settling time across the design space — the
//! quantitative footing for the paper's point that printed electronics is
//! slow and therefore favors compact analog inference.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin latency
//! ```

use pnc_spice::circuits::{NonlinearCircuitParams, VDD};
use pnc_spice::{Circuit, EgtModel, SpiceError, TransientSolver, GROUND};

/// Printed electrolyte gate capacitance per channel area (F/m²). The huge
/// electric-double-layer capacitance is what makes EGTs both low-voltage
/// and slow.
const GATE_CAP_PER_AREA: f64 = 5e-2; // 5 µF/cm²

/// Builds the two-stage nonlinear circuit *with* gate capacitors and
/// returns (netlist, input source id, output node).
fn build_dynamic(
    params: &NonlinearCircuitParams,
) -> Result<(Circuit, pnc_spice::DeviceId, pnc_spice::Node), SpiceError> {
    params.validate()?;
    let egt = EgtModel::printed(params.w, params.l);
    let c_gate = GATE_CAP_PER_AREA * params.w * params.l;

    let mut c = Circuit::new();
    let vdd = c.new_node();
    let vin_node = c.new_node();
    let g1 = c.new_node();
    let d1 = c.new_node();
    let g2 = c.new_node();
    let out = c.new_node();

    c.vsource(vdd, GROUND, VDD)?;
    let vin = c.vsource(vin_node, GROUND, 0.0)?;
    c.resistor(vin_node, g1, params.r1)?;
    c.resistor(g1, GROUND, params.r2)?;
    c.capacitor(g1, GROUND, c_gate)?;
    c.resistor(vdd, d1, params.r5)?;
    c.egt(d1, g1, GROUND, egt)?;
    c.resistor(d1, g2, params.r3)?;
    c.resistor(g2, GROUND, params.r4)?;
    c.capacitor(g2, GROUND, c_gate)?;
    c.resistor(vdd, out, pnc_spice::circuits::SECOND_STAGE_LOAD_OHMS)?;
    c.egt(out, g2, GROUND, egt)?;
    Ok((c, vin, out))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = [
        ("nominal", NonlinearCircuitParams::nominal()),
        (
            "high-impedance (slow)",
            NonlinearCircuitParams {
                r1: 400.0,
                r2: 200.0,
                r3: 500_000.0,
                r4: 400_000.0,
                r5: 500_000.0,
                w: 800e-6,
                l: 70e-6,
            },
        ),
        (
            "low-impedance (fast)",
            NonlinearCircuitParams {
                r1: 100.0,
                r2: 50.0,
                r3: 50_000.0,
                r4: 40_000.0,
                r5: 20_000.0,
                w: 200e-6,
                l: 10e-6,
            },
        ),
    ];

    println!("step-response settling (1% of final value) of the ptanh circuit");
    println!(
        "gate capacitance model: {:.0} uF/cm^2 electrolyte double layer\n",
        GATE_CAP_PER_AREA * 1e2
    );
    println!("{:<24}{:>14}{:>16}", "design", "C_gate", "settling time");
    for (name, params) in designs {
        let (mut ckt, vin, out) = build_dynamic(&params)?;
        let c_gate = GATE_CAP_PER_AREA * params.w * params.l;
        // Time constants scale with R·C; pick the step from the dominant RC.
        let tau_est = params.r3.max(params.r5) * c_gate;
        let solver = TransientSolver::new(tau_est / 100.0);
        let wave = solver.simulate(&mut ckt, 20.0 * tau_est, |t, c| {
            c.set_vsource(vin, if t > 0.0 { 0.8 } else { 0.2 })
        })?;
        let settle = wave.settling_time(out, 0.01 * VDD).unwrap_or(f64::NAN);
        println!(
            "{name:<24}{:>11.2} nF{:>13.1} us",
            c_gate * 1e9,
            settle * 1e6
        );
    }
    println!(
        "\nMillisecond-scale settling at printed feature sizes confirms the\n\
         near-sensor, low-throughput application domain of Sec. I."
    );
    Ok(())
}
