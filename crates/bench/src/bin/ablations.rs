//! Design-choice ablations called out in `DESIGN.md`: circuit-sharing
//! granularity (one bespoke circuit pair shared by all layers vs one per
//! layer) and the classification loss (the pNN margin loss vs softmax
//! cross-entropy).
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin ablations -- [--dataset seeds]
//! ```

use pnc_bench::default_surrogate;
use pnc_core::{
    mc_evaluate, train_best_of_seeds, LabeledData, LossKind, NonlinearityGranularity, PnnConfig,
    TrainConfig, VariationModel,
};
use pnc_datasets::benchmark_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset_name = args
        .iter()
        .position(|a| a == "--dataset")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "seeds".into());
    let dataset = benchmark_suite()
        .into_iter()
        .find(|d| d.name.to_lowercase().contains(&dataset_name.to_lowercase()))
        .ok_or_else(|| format!("unknown dataset {dataset_name}"))?;

    let (train, val, test) = dataset.split(42);
    let train_d = LabeledData::new(&train.features, &train.labels)?;
    let val_d = LabeledData::new(&val.features, &val.labels)?;
    let test_d = LabeledData::new(&test.features, &test.labels)?;
    let surrogate = default_surrogate()?;
    let epsilon = 0.10;

    println!(
        "design ablations on {} (full method, trained and tested at ±{:.0}%)\n",
        dataset.name,
        epsilon * 100.0
    );
    println!("{:<44}{:>18}", "design point", "acc (50 MC draws)");

    let cases: [(&str, NonlinearityGranularity, LossKind); 5] = [
        (
            "per-layer circuits, margin loss (default)",
            NonlinearityGranularity::PerLayer,
            LossKind::Margin { margin: 0.3 },
        ),
        (
            "shared circuits, margin loss",
            NonlinearityGranularity::Shared,
            LossKind::Margin { margin: 0.3 },
        ),
        (
            "per-neuron circuits, margin loss",
            NonlinearityGranularity::PerNeuron,
            LossKind::Margin { margin: 0.3 },
        ),
        (
            "per-layer circuits, cross-entropy (T=0.1)",
            NonlinearityGranularity::PerLayer,
            LossKind::CrossEntropy { temperature: 0.1 },
        ),
        (
            "per-layer circuits, margin 0.1",
            NonlinearityGranularity::PerLayer,
            LossKind::Margin { margin: 0.1 },
        ),
    ];

    for (name, granularity, loss) in cases {
        let mut config = PnnConfig::for_dataset(dataset.num_features(), dataset.num_classes);
        config.granularity = granularity;
        let train_cfg = TrainConfig {
            loss,
            variation: VariationModel::Uniform { epsilon },
            n_train_mc: 5,
            n_val_mc: 3,
            max_epochs: 250,
            patience: 100,
            ..TrainConfig::default()
        };
        let (pnn, _) = train_best_of_seeds(
            &config,
            surrogate.clone(),
            &train_cfg,
            train_d,
            val_d,
            &[1, 2, 3],
        )?;
        let stats = mc_evaluate(&pnn, test_d, &VariationModel::Uniform { epsilon }, 50, 7)?;
        println!("{name:<44}{:>9.3} ± {:.3}", stats.mean, stats.std);
    }
    Ok(())
}
