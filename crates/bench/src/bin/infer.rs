//! Inference-path benchmark: the autodiff-graph forward vs the compiled
//! allocation-free [`InferencePlan`] (f64 / f32 / Q1.14 fixed-point) on the
//! paper's Iris network. Results go to `BENCH_infer.json` at the repo root,
//! with the `infer.*` counter summary beside it in
//! `BENCH_infer_metrics.json`.
//!
//! Two sections:
//!
//! 1. **single_sample** — per-call latency distribution (p50/p99 in µs) of
//!    one-row inference, the deployment-shaped workload: a printed
//!    classifier sees one sensor frame at a time. The headline
//!    `speedup_f64_vs_graph` compares p50s and must stay ≥ 3× (enforced by
//!    `scripts/check_bench_infer.sh`).
//! 2. **batched** — steady-state inferences/s at batch 128 for the graph
//!    path and all three plan precisions.
//!
//! The report also carries `bit_identical_f64`: the f64 plan's outputs on
//! the held-out rows are compared against the graph forward with exact
//! equality, re-verifying the DESIGN.md §12 contract on the very network
//! being timed.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin infer -- [--quick]
//! ```

use pnc_core::{
    InferencePlan, InferencePlanF32, InferencePlanQuant, LabeledData, Pnn, PnnConfig, TrainConfig,
    Trainer, VariationModel,
};
use pnc_datasets::generators::iris;
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig as STrain};
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The trained network behind the numbers, for report self-description.
#[derive(Debug, Serialize)]
struct NetworkInfo {
    /// Benchmark task the network was trained on.
    dataset: String,
    /// Input features.
    in_dim: usize,
    /// Output classes.
    out_dim: usize,
    /// Crossbar layers in the compiled plan.
    layers: usize,
    /// Training epochs the network received before compilation.
    train_epochs: usize,
}

/// Per-call latency percentiles of one-row inference, in microseconds.
#[derive(Debug, Serialize)]
struct SingleSampleSection {
    /// Timed calls per variant (after warmup).
    reps: usize,
    graph_p50_us: f64,
    graph_p99_us: f64,
    plan_f64_p50_us: f64,
    plan_f64_p99_us: f64,
    plan_f32_p50_us: f64,
    plan_f32_p99_us: f64,
    plan_q16_p50_us: f64,
    plan_q16_p99_us: f64,
    /// `graph_p50_us / plan_f64_p50_us` — the headline compiled-plan win.
    speedup_f64_vs_graph: f64,
}

/// Steady-state throughput at a fixed batch, in inferences (rows) per second.
#[derive(Debug, Serialize)]
struct BatchedSection {
    /// Rows per call.
    batch: usize,
    graph_inferences_per_s: f64,
    plan_f64_inferences_per_s: f64,
    plan_f32_inferences_per_s: f64,
    plan_q16_inferences_per_s: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// Physical cores on the measuring machine (every timing here is
    /// single-threaded; this is context, not a parallelism claim).
    machine_threads: usize,
    network: NetworkInfo,
    single_sample: SingleSampleSection,
    batched: BatchedSection,
    /// Whether the f64 plan reproduced the graph forward bit for bit on the
    /// held-out rows of the benchmarked network.
    bit_identical_f64: bool,
}

fn logical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to [`logical_threads`] where the file is
/// absent or unparsable (same accounting as the `kernels` bench bin).
fn physical_cores() -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical_threads();
    };
    let mut cores = std::collections::HashSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in info.lines().chain(std::iter::once("")) {
        if line.trim().is_empty() {
            if let (Some(p), Some(c)) = (package, core) {
                cores.insert((p, c));
            }
            package = None;
            core = None;
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => package = value.trim().parse().ok(),
            "core id" => core = value.trim().parse().ok(),
            _ => {}
        }
    }
    if cores.is_empty() {
        logical_threads()
    } else {
        cores.len()
    }
}

/// `p`-th percentile (0–100) of an ascending-sorted sample, nearest-rank.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-call wall times of `reps` invocations of `f`, in microseconds,
/// ascending, after `reps / 10 + 1` warmup calls.
fn time_calls<F: FnMut()>(reps: usize, mut f: F) -> Vec<f64> {
    for _ in 0..reps / 10 + 1 {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(f64::total_cmp);
    samples
}

/// Best-of-`reps` wall time of `f`, in milliseconds, after one warmup run.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    eprintln!("building fixture surrogate ...");
    let data = build_dataset(&DatasetConfig {
        samples: if quick { 60 } else { 120 },
        sweep_points: if quick { 21 } else { 31 },
    })?;
    let surrogate = Arc::new(
        train_surrogate(
            &data,
            &STrain {
                layer_sizes: vec![10, 8, 4],
                max_epochs: if quick { 60 } else { 200 },
                patience: 100,
                ..STrain::default()
            },
        )?
        .0,
    );

    let ds = iris();
    let (train, val, test) = ds.split(7);
    let train_epochs = if quick { 2 } else { 6 };
    eprintln!(
        "training the {} network for {train_epochs} epoch(s) ...",
        ds.name
    );
    let config = PnnConfig::for_dataset(ds.num_features(), ds.num_classes).with_seed(7);
    let mut pnn = Pnn::new(config, surrogate)?;
    Trainer::new(TrainConfig {
        variation: VariationModel::None,
        n_train_mc: 1,
        n_val_mc: 1,
        max_epochs: train_epochs,
        patience: train_epochs,
        parallel: ParallelConfig::serial(),
        ..TrainConfig::default()
    })
    .train(
        &mut pnn,
        LabeledData::new(&train.features, &train.labels)?,
        LabeledData::new(&val.features, &val.labels)?,
    )?;

    let mut plan64 = InferencePlan::compile(&pnn)?;
    let mut plan32 = InferencePlanF32::compile(&pnn)?;
    let mut planq = InferencePlanQuant::compile(&pnn)?;

    // Bit-identity of the f64 plan on held-out rows, on the very network
    // being timed — the DESIGN.md §12 contract, re-checked in situ.
    let graph_out = pnn.infer(&test.features, None)?;
    let plan_out = plan64.infer(&test.features)?;
    let bit_identical_f64 = graph_out == plan_out;
    eprintln!(
        "f64 plan bit-identity over {} held-out rows: {bit_identical_f64}",
        test.features.rows()
    );

    // Single-sample latency: one held-out row, the deployment-shaped load.
    let reps = if quick { 300 } else { 2000 };
    let x1 = Matrix::from_fn(1, test.features.cols(), |_, j| test.features[(0, j)]);
    let mut out1 = Matrix::zeros(1, ds.num_classes);
    eprintln!("single-sample latency, {reps} calls per variant ...");
    let graph_t = time_calls(reps, || {
        black_box(pnn.infer(black_box(&x1), None).expect("graph forward"));
    });
    let f64_t = time_calls(reps, || {
        plan64
            .infer_into(black_box(&x1), &mut out1)
            .expect("f64 plan forward");
        black_box(&out1);
    });
    let f32_t = time_calls(reps, || {
        plan32
            .infer_into(black_box(&x1), &mut out1)
            .expect("f32 plan forward");
        black_box(&out1);
    });
    let q16_t = time_calls(reps, || {
        planq
            .infer_into(black_box(&x1), &mut out1)
            .expect("quant plan forward");
        black_box(&out1);
    });
    let single_sample = SingleSampleSection {
        reps,
        graph_p50_us: percentile(&graph_t, 50.0),
        graph_p99_us: percentile(&graph_t, 99.0),
        plan_f64_p50_us: percentile(&f64_t, 50.0),
        plan_f64_p99_us: percentile(&f64_t, 99.0),
        plan_f32_p50_us: percentile(&f32_t, 50.0),
        plan_f32_p99_us: percentile(&f32_t, 99.0),
        plan_q16_p50_us: percentile(&q16_t, 50.0),
        plan_q16_p99_us: percentile(&q16_t, 99.0),
        speedup_f64_vs_graph: percentile(&graph_t, 50.0) / percentile(&f64_t, 50.0),
    };
    eprintln!(
        "  graph p50 {:.2} µs   plan f64 p50 {:.2} µs   ({:.1}x)",
        single_sample.graph_p50_us,
        single_sample.plan_f64_p50_us,
        single_sample.speedup_f64_vs_graph
    );

    // Batched throughput: 128 rows cycled out of the held-out split.
    let batch = 128;
    let breps = if quick { 20 } else { 100 };
    let xb = Matrix::from_fn(batch, test.features.cols(), |i, j| {
        test.features[(i % test.features.rows(), j)]
    });
    let mut outb = Matrix::zeros(batch, ds.num_classes);
    eprintln!("batched throughput at batch {batch} ...");
    let per_s = |ms: f64| batch as f64 / (ms * 1e-3);
    let batched = BatchedSection {
        batch,
        graph_inferences_per_s: per_s(time_best(breps, || {
            black_box(pnn.infer(black_box(&xb), None).expect("graph forward"));
        })),
        plan_f64_inferences_per_s: per_s(time_best(breps, || {
            plan64
                .infer_into(black_box(&xb), &mut outb)
                .expect("f64 plan forward");
            black_box(&outb);
        })),
        plan_f32_inferences_per_s: per_s(time_best(breps, || {
            plan32
                .infer_into(black_box(&xb), &mut outb)
                .expect("f32 plan forward");
            black_box(&outb);
        })),
        plan_q16_inferences_per_s: per_s(time_best(breps, || {
            planq
                .infer_into(black_box(&xb), &mut outb)
                .expect("quant plan forward");
            black_box(&outb);
        })),
    };
    eprintln!(
        "  graph {:.0}/s   f64 {:.0}/s   f32 {:.0}/s   q16 {:.0}/s",
        batched.graph_inferences_per_s,
        batched.plan_f64_inferences_per_s,
        batched.plan_f32_inferences_per_s,
        batched.plan_q16_inferences_per_s
    );

    let report = Report {
        machine_threads: physical_cores(),
        network: NetworkInfo {
            dataset: ds.name.clone(),
            in_dim: plan64.in_dim(),
            out_dim: plan64.out_dim(),
            layers: plan64.num_layers(),
            train_epochs,
        },
        single_sample,
        batched,
        bit_identical_f64,
    };
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_infer.json");
    std::fs::write(&out, serde_json::to_string_pretty(&report)?)?;
    eprintln!("\nreport saved to {}", out.display());

    // End-of-run metrics summary next to the timing report: the `infer.*`
    // counters behind the numbers above (see docs/METRICS.md).
    let metrics_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_infer_metrics.json");
    pnc_obs::write_summary(&metrics_out)?;
    eprintln!("metrics summary saved to {}", metrics_out.display());

    println!(
        "single-sample f64 plan speedup vs graph: {:.2}x (bit-identical: {})",
        report.single_sample.speedup_f64_vs_graph, report.bit_identical_f64
    );
    Ok(())
}
