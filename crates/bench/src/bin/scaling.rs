//! Thread-scaling measurement for the parallel substrate: variation-aware
//! training epochs (Monte-Carlo loss) and DC sweep throughput at 1, 2, 4
//! and all-physical-core threads, written to `BENCH_parallel.json` at the
//! repo root. Counts above the physical cores (SMT siblings) are skipped:
//! they oversubscribe the machine and measure scheduling, not scaling.
//!
//! Every measured configuration produces **bit-identical** numeric results
//! (see the `*_identical_across_thread_counts` tests); this binary only
//! quantifies the wall-clock difference.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin scaling -- [--quick] [--mc N] [--epochs N]
//! ```

use pnc_core::{LabeledData, Pnn, PnnConfig, TrainConfig, Trainer, VariationModel};
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit, VDD};
use pnc_spice::sweep::linspace;
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig as STrain};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One thread count's measurement.
#[derive(Debug, Serialize)]
struct ScalingPoint {
    /// Worker thread count the stage ran with.
    threads: usize,
    /// Physical core count of the measuring machine, repeated on every row
    /// so a single row is interpretable without the report header.
    machine_threads: usize,
    /// Best-of-repetitions wall time, milliseconds.
    wall_ms: f64,
    /// `serial wall_ms / this wall_ms` (1.0 for the serial row).
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct EpochScaling {
    /// Monte-Carlo draws per training step.
    n_mc: usize,
    /// Epochs per timed run.
    epochs: usize,
    /// Training batch rows.
    batch: usize,
    results: Vec<ScalingPoint>,
}

#[derive(Debug, Serialize)]
struct SweepScaling {
    /// Operating points per timed sweep.
    points: usize,
    /// Points solved per second at each thread count.
    points_per_s: Vec<f64>,
    results: Vec<ScalingPoint>,
}

#[derive(Debug, Serialize)]
struct Report {
    /// Physical cores on the measuring machine (unique `(physical id,
    /// core id)` pairs from `/proc/cpuinfo`; falls back to
    /// `std::thread::available_parallelism` where that file is absent).
    machine_threads: usize,
    /// `std::thread::available_parallelism` — counts SMT siblings too.
    logical_threads: usize,
    /// Interpretation aid: speedup is bounded above by `machine_threads`.
    note: String,
    epoch: EpochScaling,
    sweep: SweepScaling,
}

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Best-of-`reps` wall time of `f`, in milliseconds, after one warmup run.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn logical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`. SMT siblings share both ids, so hyperthreads collapse
/// into one core. Falls back to [`logical_threads`] where the file is
/// absent or unparsable (non-Linux, restricted containers).
fn physical_cores() -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical_threads();
    };
    let mut cores = std::collections::HashSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in info.lines().chain(std::iter::once("")) {
        if line.trim().is_empty() {
            if let (Some(p), Some(c)) = (package, core) {
                cores.insert((p, c));
            }
            package = None;
            core = None;
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => package = value.trim().parse().ok(),
            "core id" => core = value.trim().parse().ok(),
            _ => {}
        }
    }
    if cores.is_empty() {
        logical_threads()
    } else {
        cores.len()
    }
}

/// Thread counts to measure: 1, 2, 4 and the full physical-core count,
/// skipping anything above the physical cores — oversubscribed counts only
/// measure scheduling overhead, not the substrate's scaling.
fn thread_counts(machine: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, machine];
    counts.retain(|&c| c <= machine);
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let n_mc = arg_value(&args, "--mc").unwrap_or(8).max(1);
    let epochs = arg_value(&args, "--epochs").unwrap_or(if quick { 3 } else { 8 });
    let reps = if quick { 2 } else { 3 };
    let machine = physical_cores();
    let logical = logical_threads();
    let counts = thread_counts(machine);
    eprintln!("machine: {machine} physical core(s), {logical} logical thread(s)");

    // --- fixture: a surrogate and a synthetic classification task --------
    eprintln!("building fixture surrogate ...");
    let data = build_dataset(&DatasetConfig {
        samples: 150,
        sweep_points: 31,
    })?;
    let fixture_tally = data.failure_tally();
    if fixture_tally.total() > 0 {
        eprintln!(
            "  fixture dataset dropped {} point(s): build {}, sweep {}, fit {}",
            fixture_tally.total(),
            fixture_tally.build,
            fixture_tally.sweep,
            fixture_tally.fit
        );
    }
    let surrogate = Arc::new(
        train_surrogate(
            &data,
            &STrain {
                layer_sizes: vec![10, 8, 4],
                max_epochs: 200,
                patience: 100,
                ..STrain::default()
            },
        )?
        .0,
    );
    let batch = 128;
    let x = Matrix::from_fn(batch, 6, |i, j| ((i * 5 + j * 3) % 13) as f64 / 12.0);
    let y: Vec<usize> = (0..batch).map(|i| i % 3).collect();

    // --- stage 1: variation-aware training epochs ------------------------
    eprintln!("timing {epochs} variation-aware epochs (n_mc = {n_mc}) ...");
    let mut epoch_points = Vec::new();
    for &threads in &counts {
        let wall_ms = time_best(reps, || {
            let mut pnn =
                Pnn::new(PnnConfig::for_dataset(6, 3), surrogate.clone()).expect("valid config");
            let data = LabeledData::new(&x, &y).expect("consistent");
            Trainer::new(TrainConfig {
                variation: VariationModel::Uniform { epsilon: 0.1 },
                n_train_mc: n_mc,
                n_val_mc: 2,
                max_epochs: epochs,
                patience: epochs,
                parallel: ParallelConfig::with_threads(threads),
                ..TrainConfig::default()
            })
            .train(&mut pnn, data, data)
            .expect("trains");
        });
        eprintln!("  {threads:>2} threads: {wall_ms:>9.1} ms");
        epoch_points.push(ScalingPoint {
            threads,
            machine_threads: machine,
            wall_ms,
            speedup: 0.0,
        });
    }
    let serial_ms = epoch_points[0].wall_ms;
    for p in &mut epoch_points {
        p.speedup = serial_ms / p.wall_ms;
    }

    // --- stage 2: DC sweep throughput ------------------------------------
    let sweep_points = arg_value(&args, "--points").unwrap_or(if quick { 256 } else { 1024 });
    eprintln!("timing {sweep_points}-point DC sweeps ...");
    let ckt = PtanhCircuit::build(&NonlinearCircuitParams::nominal())?;
    let grid = linspace(0.0, VDD, sweep_points);
    let mut sweep_results = Vec::new();
    let mut points_per_s = Vec::new();
    for &threads in &counts {
        let parallel = ParallelConfig::with_threads(threads);
        let wall_ms = time_best(reps, || {
            ckt.transfer_curve_parallel(&grid, &parallel)
                .expect("sweeps");
        });
        let throughput = sweep_points as f64 / (wall_ms * 1e-3);
        eprintln!("  {threads:>2} threads: {wall_ms:>9.1} ms ({throughput:>9.0} points/s)");
        points_per_s.push(throughput);
        sweep_results.push(ScalingPoint {
            threads,
            machine_threads: machine,
            wall_ms,
            speedup: 0.0,
        });
    }
    let serial_sweep = sweep_results[0].wall_ms;
    for p in &mut sweep_results {
        p.speedup = serial_sweep / p.wall_ms;
    }

    let report = Report {
        machine_threads: machine,
        logical_threads: logical,
        note: format!(
            "speedup is bounded by the {machine} physical core(s) of the measuring \
             machine; oversubscribed thread counts are skipped because they only \
             measure scheduling overhead. Numeric results are bit-identical at \
             every thread count."
        ),
        epoch: EpochScaling {
            n_mc,
            epochs,
            batch,
            results: epoch_points,
        },
        sweep: SweepScaling {
            points: sweep_points,
            points_per_s,
            results: sweep_results,
        },
    };

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    std::fs::write(&out, serde_json::to_string_pretty(&report)?)?;
    eprintln!("\nreport saved to {}", out.display());

    // End-of-run metrics summary next to the timing report: total solver and
    // training effort behind the numbers above (see docs/METRICS.md).
    let metrics_out =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel_metrics.json");
    pnc_obs::write_summary(&metrics_out)?;
    eprintln!("metrics summary saved to {}", metrics_out.display());

    println!("epoch-time speedup:");
    for p in &report.epoch.results {
        println!("  {:>2} threads: {:.2}x", p.threads, p.speedup);
    }
    println!("sweep-throughput speedup:");
    for p in &report.sweep.results {
        println!("  {:>2} threads: {:.2}x", p.threads, p.speedup);
    }
    Ok(())
}
