//! Solver-backend shootout: dense LU vs sparse LU vs coordinate descent on
//! the two circuit families where the choice matters — resistor ladders
//! (high diameter, where coordinate descent struggles) and crossbar
//! networks (the paper's topology, where sparsity pays). Results go to
//! `BENCH_spice.json` at the repo root, with the `spice.*` metrics summary
//! beside it in `BENCH_spice_metrics.json`.
//!
//! Every timed circuit is also solved once per backend for an *in-situ*
//! agreement check against the dense-LU oracle: `worst_sparse_dev` and
//! `worst_cd_dev` in the report are the largest node-voltage deviations
//! seen anywhere in the run, and `scripts/check_bench_spice.sh` holds them
//! to the tolerances documented in `docs/SOLVERS.md`. The same script
//! enforces the headline scaling bar: on the largest crossbar (≥ 10× the
//! Fig. 1 node count) dense LU must be ≥ 5× slower than sparse LU.
//!
//! Coordinate-descent entries are `null` where the backend is not run
//! (long ladders — its documented high-diameter weakness) or where it
//! reports non-convergence; a `null` is never an agreement failure.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin spice_backends -- [--quick]
//! ```

use pnc_spice::circuits::{resistor_ladder, CrossbarNetwork};
use pnc_spice::{Circuit, DcSolver, SolverBackend};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// Sparse LU must track the dense oracle to linear-solver precision.
const SPARSE_TOL: f64 = 1e-8;

/// Coordinate descent agrees within its residual-implied bound at default
/// tolerances (see `docs/SOLVERS.md`).
const CD_TOL: f64 = 2e-4;

/// Ladders longer than this skip coordinate descent: information moves one
/// node per sweep, so the sweep count grows with the diameter.
const CD_LADDER_LIMIT: usize = 24;

/// One circuit measured under every applicable backend.
#[derive(Debug, Serialize)]
struct CircuitResult {
    /// `"ladder"` or `"crossbar"`.
    family: String,
    /// Human-readable size, e.g. `"ladder-64"` or `"crossbar-16x16x16"`.
    label: String,
    /// Non-ground node count (the MNA dimension less vsource branches).
    nodes: usize,
    /// Cold solves per second under the dense-LU oracle.
    dense_solves_per_s: f64,
    /// Cold solves per second under sparse LU.
    sparse_solves_per_s: f64,
    /// Cold solves per second under coordinate descent; `null` where the
    /// backend is skipped or did not converge.
    cd_solves_per_s: Option<f64>,
    /// Largest |voltage difference| vs the dense oracle across all nodes.
    sparse_max_dev: f64,
    /// Same for coordinate descent; `null` where skipped.
    cd_max_dev: Option<f64>,
}

/// The scaling headline: the crossbar where sparsity must pay.
#[derive(Debug, Serialize)]
struct Headline {
    label: String,
    nodes: usize,
    dense_solves_per_s: f64,
    sparse_solves_per_s: f64,
    /// `sparse_solves_per_s / dense_solves_per_s` — the ≥ 5 hard bar.
    dense_vs_sparse_slowdown: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// Physical cores on the measuring machine.
    machine_threads: usize,
    /// Whether this was a `--quick` smoke run.
    quick: bool,
    circuits: Vec<CircuitResult>,
    headline: Headline,
    /// Smallest measured node count where sparse LU out-solves dense LU;
    /// `null` if dense won everywhere (it never should at these sizes).
    crossover_nodes: Option<usize>,
    /// The agreement bars the deviations below are held to.
    sparse_agreement_tol: f64,
    cd_agreement_tol: f64,
    /// Largest sparse-vs-dense node-voltage deviation anywhere in the run.
    worst_sparse_dev: f64,
    /// Largest coord-descent-vs-dense deviation over the circuits where
    /// coordinate descent ran.
    worst_cd_dev: f64,
}

fn logical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to [`logical_threads`] (same accounting as
/// the other bench bins).
fn physical_cores() -> usize {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical_threads();
    };
    let mut cores = std::collections::HashSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in info.lines().chain(std::iter::once("")) {
        if line.trim().is_empty() {
            if let (Some(p), Some(c)) = (package, core) {
                cores.insert((p, c));
            }
            package = None;
            core = None;
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => package = value.trim().parse().ok(),
            "core id" => core = value.trim().parse().ok(),
            _ => {}
        }
    }
    if cores.is_empty() {
        logical_threads()
    } else {
        cores.len()
    }
}

/// Cold solves per second of `circuit` under `backend`, best of `reps`
/// batches. The batch size is calibrated from one warmup solve so slow
/// backends on big circuits still finish promptly, then the max batch rate
/// is taken — transient slowdowns only ever subtract throughput.
fn solves_per_s(circuit: &Circuit, backend: SolverBackend, reps: usize, target_s: f64) -> f64 {
    let solver = DcSolver::with_backend(backend);
    let warmup = Instant::now();
    solver.solve(circuit).expect("timed circuit solves");
    let one = warmup.elapsed().as_secs_f64().max(1e-7);
    let batch = ((target_s / one).ceil() as usize).clamp(1, 20_000);
    let mut best = 0.0_f64;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..batch {
            solver.solve(circuit).expect("timed circuit solves");
        }
        best = best.max(batch as f64 / t.elapsed().as_secs_f64());
    }
    best
}

/// Largest |node-voltage difference| between a backend's solution and the
/// dense oracle's, over every non-ground node.
fn max_deviation(circuit: &Circuit, oracle: &[f64], backend: SolverBackend) -> Option<f64> {
    let got = DcSolver::with_backend(backend).solve(circuit).ok()?;
    Some(
        oracle
            .iter()
            .zip(got.voltages())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max),
    )
}

/// Measures one circuit under every applicable backend.
fn measure(
    family: &str,
    label: String,
    circuit: &Circuit,
    run_cd: bool,
    reps: usize,
    target_s: f64,
) -> CircuitResult {
    eprintln!("  {label} ({} nodes) ...", circuit.num_nodes());
    let oracle = DcSolver::new().solve(circuit).expect("dense oracle solves");
    let sparse_max_dev =
        max_deviation(circuit, oracle.voltages(), SolverBackend::SparseLu).unwrap_or(f64::INFINITY);
    let cd_max_dev = if run_cd {
        max_deviation(circuit, oracle.voltages(), SolverBackend::CoordDescent)
    } else {
        None
    };
    let dense = solves_per_s(circuit, SolverBackend::DenseLu, reps, target_s);
    let sparse = solves_per_s(circuit, SolverBackend::SparseLu, reps, target_s);
    // Only time coordinate descent where its agreement solve converged.
    let cd = cd_max_dev.map(|_| solves_per_s(circuit, SolverBackend::CoordDescent, reps, target_s));
    eprintln!(
        "    dense {dense:.0}/s   sparse {sparse:.0}/s   cd {}",
        cd.map_or("skipped".to_string(), |c| format!("{c:.0}/s")),
    );
    CircuitResult {
        family: family.to_string(),
        label,
        nodes: circuit.num_nodes(),
        dense_solves_per_s: dense,
        sparse_solves_per_s: sparse,
        cd_solves_per_s: cd,
        sparse_max_dev,
        cd_max_dev,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 5 };
    let target_s = if quick { 0.05 } else { 0.25 };

    let mut circuits = Vec::new();

    eprintln!("resistor ladders ...");
    let ladder_sections: &[usize] = if quick {
        &[8, 24, 96]
    } else {
        &[8, 24, 96, 384]
    };
    for &sections in ladder_sections {
        let (ladder, _) = resistor_ladder(sections, 1_000.0, 10_000.0)?;
        circuits.push(measure(
            "ladder",
            format!("ladder-{sections}"),
            &ladder,
            sections <= CD_LADDER_LIMIT,
            reps,
            target_s,
        ));
    }

    eprintln!("crossbar networks ...");
    let crossbar_layers: &[&[usize]] = if quick {
        &[&[4, 4], &[8, 8, 8], &[16, 16, 16, 16]]
    } else {
        &[&[4, 4], &[8, 8, 8], &[12, 12, 12], &[16, 16, 16, 16]]
    };
    let mut headline: Option<Headline> = None;
    for &layers in crossbar_layers {
        let label = format!(
            "crossbar-{}",
            layers
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join("x")
        );
        let net = CrossbarNetwork::build(layers, 42)?;
        let result = measure(
            "crossbar",
            label.clone(),
            net.circuit(),
            true,
            reps,
            target_s,
        );
        headline = Some(Headline {
            label,
            nodes: result.nodes,
            dense_solves_per_s: result.dense_solves_per_s,
            sparse_solves_per_s: result.sparse_solves_per_s,
            dense_vs_sparse_slowdown: result.sparse_solves_per_s / result.dense_solves_per_s,
        });
        circuits.push(result);
    }
    let headline = headline.expect("at least one crossbar is always measured");

    let mut by_nodes: Vec<&CircuitResult> = circuits.iter().collect();
    by_nodes.sort_by_key(|r| r.nodes);
    let crossover_nodes = by_nodes
        .iter()
        .find(|r| r.sparse_solves_per_s > r.dense_solves_per_s)
        .map(|r| r.nodes);

    let worst_sparse_dev = circuits
        .iter()
        .map(|r| r.sparse_max_dev)
        .fold(0.0_f64, f64::max);
    let worst_cd_dev = circuits
        .iter()
        .filter_map(|r| r.cd_max_dev)
        .fold(0.0_f64, f64::max);

    let report = Report {
        machine_threads: physical_cores(),
        quick,
        circuits,
        headline,
        crossover_nodes,
        sparse_agreement_tol: SPARSE_TOL,
        cd_agreement_tol: CD_TOL,
        worst_sparse_dev,
        worst_cd_dev,
    };

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_spice.json");
    std::fs::write(&out, serde_json::to_string_pretty(&report)?)?;
    eprintln!("\nreport saved to {}", out.display());

    // End-of-run metrics summary next to the timing report: the
    // `spice.backend.*` counters behind the numbers above (docs/METRICS.md).
    let metrics_out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_spice_metrics.json");
    pnc_obs::write_summary(&metrics_out)?;
    eprintln!("metrics summary saved to {}", metrics_out.display());

    println!(
        "headline {}: {} nodes, dense {:.0}/s vs sparse {:.0}/s ({:.1}x), \
         worst sparse dev {:.2e}, worst cd dev {:.2e}",
        report.headline.label,
        report.headline.nodes,
        report.headline.dense_solves_per_s,
        report.headline.sparse_solves_per_s,
        report.headline.dense_vs_sparse_slowdown,
        report.worst_sparse_dev,
        report.worst_cd_dev,
    );
    Ok(())
}
