//! Regenerates **Fig. 2** of the paper: exemplary characteristic curves of
//! the ptanh circuit (left panel) and the negative-weight circuit (right
//! panel) for several physical parameterizations ω.
//!
//! The negative-weight circuit reuses the ptanh netlist (Sec. II-B c); its
//! model curve is the falling mirror of the simulated transfer curve (see
//! `pnc_core::apply_inv` for the sign-convention discussion).
//!
//! Prints one CSV block per panel: first column `V_in`, one column per ω.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin fig2 [--csv]
//! ```

use pnc_spice::circuits::{characteristic_curve, NonlinearCircuitParams};
use pnc_spice::SpiceError;

fn designs() -> Vec<(String, NonlinearCircuitParams)> {
    // A spread of the Tab. I box chosen to show the diversity of amplitudes,
    // midpoints and slopes that Fig. 2 illustrates.
    let raw: [(f64, f64, f64, f64, f64, f64, f64); 5] = [
        (200.0, 100.0, 300e3, 150e3, 100e3, 800.0, 20.0),
        (120.0, 100.0, 400e3, 300e3, 100e3, 800.0, 10.0),
        (400.0, 60.0, 100e3, 60e3, 150e3, 500.0, 30.0),
        (300.0, 120.0, 200e3, 90e3, 60e3, 600.0, 25.0),
        (150.0, 90.0, 450e3, 350e3, 300e3, 300.0, 50.0),
    ];
    raw.iter()
        .map(|&(r1, r2, r3, r4, r5, w_um, l_um)| {
            let p = NonlinearCircuitParams {
                r1,
                r2,
                r3,
                r4,
                r5,
                w: w_um * 1e-6,
                l: l_um * 1e-6,
            };
            (
                format!(
                    "w{}=[{:.0},{:.0},{:.0}k,{:.0}k,{:.0}k,{:.0}u,{:.0}u]",
                    0,
                    r1,
                    r2,
                    r3 / 1e3,
                    r4 / 1e3,
                    r5 / 1e3,
                    w_um,
                    l_um
                ),
                p,
            )
        })
        .collect()
}

fn main() -> Result<(), SpiceError> {
    let n = 41;
    let designs = designs();

    // Panel 1: ptanh circuit (rising activation).
    let mut ptanh_curves = Vec::new();
    for (_, params) in &designs {
        ptanh_curves.push(characteristic_curve(params, n)?);
    }

    println!("FIG 2 (left): ptanh circuit characteristic curves");
    print!("v_in");
    for k in 0..designs.len() {
        print!(",omega_{k}");
    }
    println!();
    for i in 0..n {
        print!("{:.3}", ptanh_curves[0][i].0);
        for curve in &ptanh_curves {
            print!(",{:.4}", curve[i].1);
        }
        println!();
    }

    // Panel 2: negative-weight circuit — the same netlist; the model curve
    // is the falling mirror 2η₁ − ptanh ≈ the inverter's complementary
    // output (cf. Eq. 3 and the sign-convention note in pnc-core).
    println!();
    println!("FIG 2 (right): negative-weight circuit characteristic curves");
    print!("v_in");
    for k in 0..designs.len() {
        print!(",omega_{k}");
    }
    println!();
    for i in 0..n {
        print!("{:.3}", ptanh_curves[0][i].0);
        for curve in &ptanh_curves {
            // Mirror around the curve's mid level.
            let lo = curve.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let hi = curve.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
            print!(",{:.4}", (lo + hi) - curve[i].1);
        }
        println!();
    }

    eprintln!();
    for (k, (label, _)) in designs.iter().enumerate() {
        eprintln!("omega_{k}: {label}");
    }
    Ok(())
}
