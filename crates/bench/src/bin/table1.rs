//! Regenerates **Tab. I** of the paper: the feasible design space of the
//! nonlinear circuit.
//!
//! ```sh
//! cargo run --release -p pnc-bench --bin table1
//! ```

use pnc_surrogate::DesignSpace;

fn main() {
    let space = DesignSpace::paper();
    let names = [
        "R1 (Ω)", "R2 (Ω)", "R3 (kΩ)", "R4 (kΩ)", "R5 (kΩ)", "W (µm)", "L (µm)",
    ];
    let scale = [1.0, 1.0, 1e-3, 1e-3, 1e-3, 1e6, 1e6];

    println!("TABLE I: FEASIBLE DESIGN SPACE OF NONLINEAR CIRCUIT");
    println!();
    print!("{:<10}", "");
    for n in names {
        print!("{n:>10}");
    }
    println!();
    print!("{:<10}", "minimal");
    for (k, s) in scale.iter().enumerate() {
        print!("{:>10}", space.lo[k] * s);
    }
    println!();
    print!("{:<10}", "maximal");
    for (k, s) in scale.iter().enumerate() {
        print!("{:>10}", space.hi[k] * s);
    }
    println!();
    println!("{:<10}  R1 > R2,  R3 > R4", "inequality");
    println!();
    println!(
        "feasible QMC samples are drawn with a Sobol' sequence and the two\n\
         divider inequalities enforced by rejection (see pnc_surrogate::DesignSpace::sample)."
    );
}
