//! Tab. III: per-arm averages over all datasets and the headline
//! improvement numbers.

use crate::experiment::{Arm, Table2};
use pnc_linalg::stats;
use serde::{Deserialize, Serialize};

/// One Tab. III row: an arm's accuracy mean ± std averaged over the
/// datasets, per test variation level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// The training setup.
    pub arm: Arm,
    /// Average accuracy at 5 % test variation.
    pub mean_5: f64,
    /// Average accuracy std at 5 %.
    pub std_5: f64,
    /// Average accuracy at 10 % test variation.
    pub mean_10: f64,
    /// Average accuracy std at 10 %.
    pub std_10: f64,
}

/// The ablation summary (Tab. III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows in the paper's order: full method first, baseline last.
    pub rows: Vec<SummaryRow>,
}

/// Averages a Tab. II result into Tab. III.
///
/// # Panics
///
/// Panics if the table has malformed rows (not the 8-cell layout produced by
/// [`run_table2`](crate::run_table2)).
pub fn summarize(table2: &Table2) -> Table3 {
    let arm_rows = [
        Arm {
            learnable: true,
            variation_aware: true,
        },
        Arm {
            learnable: true,
            variation_aware: false,
        },
        Arm {
            learnable: false,
            variation_aware: true,
        },
        Arm {
            learnable: false,
            variation_aware: false,
        },
    ];
    let rows = arm_rows
        .into_iter()
        .map(|arm| {
            let collect = |eps: f64| -> (f64, f64) {
                let mut means = Vec::new();
                let mut stds = Vec::new();
                for row in &table2.rows {
                    let cell = row
                        .cells
                        .iter()
                        .find(|c| c.arm == arm && (c.test_epsilon - eps).abs() < 1e-12)
                        // pnc-lint: allow(no-panic-in-lib) — bench-internal: Table 2 rows are built with all 8 cells two functions up
                        // pnc-lint: allow(panic-reachability) — `summarize` is bench tooling; its rows come from `run_table2` in this crate, never from external input
                        .expect("8-cell row layout");
                    means.push(cell.stats.mean);
                    stds.push(cell.stats.std);
                }
                (stats::mean(&means), stats::mean(&stds))
            };
            let (mean_5, std_5) = collect(0.05);
            let (mean_10, std_10) = collect(0.10);
            SummaryRow {
                arm,
                mean_5,
                std_5,
                mean_10,
                std_10,
            }
        })
        .collect();
    Table3 { rows }
}

/// The paper's headline numbers (Sec. IV-D): relative accuracy improvement
/// and relative robustness (std reduction) of the full method over the
/// baseline, at 5 % and 10 % variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Relative mean-accuracy improvement at 5 % (paper: ≈ +19 %).
    pub accuracy_gain_5: f64,
    /// Relative mean-accuracy improvement at 10 % (paper: ≈ +26 %).
    pub accuracy_gain_10: f64,
    /// Relative std reduction at 5 % (paper: ≈ 73 %).
    pub std_reduction_5: f64,
    /// Relative std reduction at 10 % (paper: ≈ 75 %).
    pub std_reduction_10: f64,
}

/// Computes the headline improvements from a Tab. III summary.
///
/// A degenerate baseline cell (zero or non-finite, as produced by an empty
/// result set) yields `0.0` for the affected ratio rather than letting
/// `inf`/NaN leak into serialized artifacts.
///
/// # Panics
///
/// Panics if the summary does not contain both the full-method and baseline
/// rows.
pub fn headline_improvements(table3: &Table3) -> Headline {
    let full = table3
        .rows
        .iter()
        .find(|r| r.arm.learnable && r.arm.variation_aware)
        // pnc-lint: allow(no-panic-in-lib) — bench-internal: documented `# Panics` contract; Table 3 always includes the full arm
        // pnc-lint: allow(panic-reachability) — `headline_improvements` is bench tooling with a documented `# Panics` contract on self-produced tables
        .expect("full-method row");
    let base = table3
        .rows
        .iter()
        .find(|r| !r.arm.learnable && !r.arm.variation_aware)
        // pnc-lint: allow(no-panic-in-lib) — bench-internal: documented `# Panics` contract; Table 3 always includes the baseline arm
        // pnc-lint: allow(panic-reachability) — `headline_improvements` is bench tooling with a documented `# Panics` contract on self-produced tables
        .expect("baseline row");
    let ratio = |num: f64, den: f64| -> f64 {
        let r = num / den;
        if r.is_finite() {
            r
        } else {
            0.0
        }
    };
    Headline {
        accuracy_gain_5: ratio(full.mean_5 - base.mean_5, base.mean_5),
        accuracy_gain_10: ratio(full.mean_10 - base.mean_10, base.mean_10),
        std_reduction_5: ratio(base.std_5 - full.std_5, base.std_5),
        std_reduction_10: ratio(base.std_10 - full.std_10, base.std_10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Budget, CellResult, DatasetRow};
    use pnc_core::McStats;

    fn cell(arm: Arm, eps: f64, mean: f64, std: f64) -> CellResult {
        CellResult {
            arm,
            train_epsilon: if arm.variation_aware { eps } else { 0.0 },
            test_epsilon: eps,
            stats: McStats {
                mean,
                std,
                accuracies: vec![mean],
            },
        }
    }

    fn synthetic_table() -> Table2 {
        // Mimics the paper's Tab. III values as a single-"dataset" average.
        let rows = vec![DatasetRow {
            dataset: "avg".into(),
            cells: vec![
                cell(
                    Arm {
                        learnable: false,
                        variation_aware: false,
                    },
                    0.05,
                    0.678,
                    0.085,
                ),
                cell(
                    Arm {
                        learnable: false,
                        variation_aware: false,
                    },
                    0.10,
                    0.626,
                    0.118,
                ),
                cell(
                    Arm {
                        learnable: false,
                        variation_aware: true,
                    },
                    0.05,
                    0.731,
                    0.053,
                ),
                cell(
                    Arm {
                        learnable: false,
                        variation_aware: true,
                    },
                    0.10,
                    0.691,
                    0.080,
                ),
                cell(
                    Arm {
                        learnable: true,
                        variation_aware: false,
                    },
                    0.05,
                    0.752,
                    0.095,
                ),
                cell(
                    Arm {
                        learnable: true,
                        variation_aware: false,
                    },
                    0.10,
                    0.697,
                    0.130,
                ),
                cell(
                    Arm {
                        learnable: true,
                        variation_aware: true,
                    },
                    0.05,
                    0.809,
                    0.023,
                ),
                cell(
                    Arm {
                        learnable: true,
                        variation_aware: true,
                    },
                    0.10,
                    0.786,
                    0.029,
                ),
            ],
        }];
        Table2 {
            budget: Budget::scaled(),
            rows,
        }
    }

    #[test]
    fn summarize_reproduces_paper_layout() {
        let t3 = summarize(&synthetic_table());
        assert_eq!(t3.rows.len(), 4);
        // Full method first.
        assert!(t3.rows[0].arm.learnable && t3.rows[0].arm.variation_aware);
        assert!((t3.rows[0].mean_5 - 0.809).abs() < 1e-12);
        // Baseline last.
        assert!(!t3.rows[3].arm.learnable && !t3.rows[3].arm.variation_aware);
        assert!((t3.rows[3].std_10 - 0.118).abs() < 1e-12);
    }

    #[test]
    fn headline_stays_finite_on_degenerate_baseline() {
        // An empty result set yields all-zero summary cells; the headline
        // ratios must degrade to 0.0, never to inf/NaN in JSON artifacts.
        let mut t3 = summarize(&synthetic_table());
        for row in &mut t3.rows {
            if !row.arm.learnable && !row.arm.variation_aware {
                row.mean_5 = 0.0;
                row.std_10 = 0.0;
            }
        }
        let h = headline_improvements(&t3);
        for v in [
            h.accuracy_gain_5,
            h.accuracy_gain_10,
            h.std_reduction_5,
            h.std_reduction_10,
        ] {
            assert!(v.is_finite(), "{h:?}");
        }
        assert_eq!(h.accuracy_gain_5, 0.0);
        assert_eq!(h.std_reduction_10, 0.0);
    }

    #[test]
    fn headline_matches_paper_arithmetic() {
        // Feeding the paper's own Tab. III numbers must reproduce its
        // claimed improvements: +19 % / +26 % accuracy, −73 % / −75 % std.
        let h = headline_improvements(&summarize(&synthetic_table()));
        assert!((h.accuracy_gain_5 - 0.19).abs() < 0.01, "{h:?}");
        assert!((h.accuracy_gain_10 - 0.26).abs() < 0.01, "{h:?}");
        assert!((h.std_reduction_5 - 0.73).abs() < 0.01, "{h:?}");
        assert!((h.std_reduction_10 - 0.75).abs() < 0.01, "{h:?}");
    }
}
