//! The Tab. II experiment grid: 13 datasets × {fixed, learnable} ×
//! {nominal, variation-aware} × test variation ∈ {5 %, 10 %}.

use pnc_core::{
    mc_evaluate, train_best_of_seeds, LabeledData, McStats, PnnConfig, PnnError, TrainConfig,
    VariationModel,
};
use pnc_datasets::Dataset;
use pnc_surrogate::SurrogateModel;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// The experiment budget. [`Budget::scaled`] is sized for a single-core
/// machine; [`Budget::paper`] reproduces Sec. IV-A exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Random seeds; the best-by-validation network is selected (Sec. IV-C).
    pub seeds: Vec<u64>,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Monte-Carlo samples per training step (`N_train`).
    pub n_train_mc: usize,
    /// Monte-Carlo samples for the validation loss.
    pub n_val_mc: usize,
    /// Monte-Carlo samples at test time (`N_test`).
    pub n_test: usize,
    /// Seed of the test-time Monte-Carlo noise.
    pub mc_seed: u64,
    /// Split seed for the 60/20/20 train/val/test partition.
    pub split_seed: u64,
}

impl Budget {
    /// Reduced budget: 3 seeds, 200 epochs, `N_train` = 5, `N_test` = 50.
    pub fn scaled() -> Self {
        Budget {
            seeds: vec![1, 2, 3],
            max_epochs: 200,
            patience: 80,
            n_train_mc: 5,
            n_val_mc: 3,
            n_test: 50,
            mc_seed: 0xEC0,
            split_seed: 42,
        }
    }

    /// The paper's budget (Sec. IV-A): seeds 1..=10, patience 5000,
    /// `N_train` = 20, `N_test` = 100.
    pub fn paper() -> Self {
        Budget {
            seeds: (1..=10).collect(),
            max_epochs: 50_000,
            patience: 5_000,
            n_train_mc: 20,
            n_val_mc: 5,
            n_test: 100,
            mc_seed: 0xEC0,
            split_seed: 42,
        }
    }

    /// Parses the command line: `--full` switches to the paper budget;
    /// `--seeds N`, `--epochs N`, `--ntest N` override individual knobs.
    pub fn from_args(args: &[String]) -> Self {
        let mut budget = if args.iter().any(|a| a == "--full") {
            Budget::paper()
        } else {
            Budget::scaled()
        };
        let value_of = |flag: &str| -> Option<usize> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(n) = value_of("--seeds") {
            budget.seeds = (1..=n as u64).collect();
        }
        if let Some(n) = value_of("--epochs") {
            budget.max_epochs = n;
            budget.patience = budget.patience.min(n);
        }
        if let Some(n) = value_of("--ntest") {
            budget.n_test = n;
        }
        budget
    }
}

/// One training setup of the ablation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arm {
    /// Learnable nonlinear circuits (the paper's contribution) vs fixed.
    pub learnable: bool,
    /// Variation-aware vs nominal training.
    pub variation_aware: bool,
}

impl Arm {
    /// All four ablation arms, baseline first.
    pub const ALL: [Arm; 4] = [
        Arm {
            learnable: false,
            variation_aware: false,
        },
        Arm {
            learnable: false,
            variation_aware: true,
        },
        Arm {
            learnable: true,
            variation_aware: false,
        },
        Arm {
            learnable: true,
            variation_aware: true,
        },
    ];

    /// Human-readable label.
    pub fn label(&self) -> String {
        format!(
            "{} nonlinear circuit, {} training",
            if self.learnable { "learnable" } else { "fixed" },
            if self.variation_aware {
                "variation-aware"
            } else {
                "nominal"
            }
        )
    }
}

/// One cell of Tab. II: an arm evaluated at one test variation level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The training setup.
    pub arm: Arm,
    /// Training variation level (0 for nominal training).
    pub train_epsilon: f64,
    /// Test variation level.
    pub test_epsilon: f64,
    /// Monte-Carlo accuracy statistics.
    pub stats: McStats,
}

/// One dataset row of Tab. II (8 cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetRow {
    /// Dataset name.
    pub dataset: String,
    /// The 8 cells in the paper's column order: fixed-nominal@5/@10,
    /// fixed-VA@5/@10, learnable-nominal@5/@10, learnable-VA@5/@10.
    pub cells: Vec<CellResult>,
}

/// The full Tab. II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// The budget the grid was run with.
    pub budget: Budget,
    /// One row per dataset.
    pub rows: Vec<DatasetRow>,
}

impl Table2 {
    /// Saves as JSON (consumed by the `table3` binary).
    ///
    /// # Errors
    ///
    /// Returns I/O or serialization failures.
    pub fn save(&self, path: &Path) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, serde_json::to_string(self)?)?;
        Ok(())
    }

    /// Loads a result saved by [`Table2::save`].
    ///
    /// # Errors
    ///
    /// Returns I/O or deserialization failures.
    pub fn load(path: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
    }
}

/// Loads (or trains and caches) the production surrogate shared by the
/// experiment binaries.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn default_surrogate() -> Result<Arc<SurrogateModel>, pnc_surrogate::SurrogateError> {
    let dir = std::env::var_os("PNC_ARTIFACT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../artifacts")
                .to_path_buf()
        });
    let (model, report) = SurrogateModel::load_or_train(
        &dir.join("surrogate-default.json"),
        &pnc_surrogate::DatasetConfig {
            samples: 2000,
            sweep_points: 61,
        },
        &pnc_surrogate::TrainConfig {
            max_epochs: 4000,
            patience: 400,
            ..pnc_surrogate::TrainConfig::default()
        },
    )?;
    if let Some(r) = report {
        eprintln!(
            "trained surrogate: val mse {:.5}, test R2 {:.3}",
            r.val_mse, r.test_r2
        );
    }
    Ok(Arc::new(model))
}

/// Trains one arm on one dataset (best of the budget's seeds) and evaluates
/// it at the given test variation.
///
/// Nominal arms train once and are evaluated at whatever `test_epsilon` is
/// requested; variation-aware arms train at `train_epsilon == test_epsilon`,
/// as the paper prescribes (Sec. IV-C).
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_cell(
    dataset: &Dataset,
    arm: Arm,
    train_epsilon: f64,
    test_epsilon: f64,
    surrogate: Arc<SurrogateModel>,
    budget: &Budget,
) -> Result<CellResult, PnnError> {
    let (train, val, test) = dataset.split(budget.split_seed);
    let train_d = LabeledData::new(&train.features, &train.labels)?;
    let val_d = LabeledData::new(&val.features, &val.labels)?;
    let test_d = LabeledData::new(&test.features, &test.labels)?;

    let mut config = PnnConfig::for_dataset(dataset.num_features(), dataset.num_classes);
    if !arm.learnable {
        config = config.with_fixed_nonlinearity();
    }
    let train_config = TrainConfig {
        lr_omega: if arm.learnable { 0.005 } else { 0.0 },
        variation: if arm.variation_aware {
            VariationModel::Uniform {
                epsilon: train_epsilon,
            }
        } else {
            VariationModel::None
        },
        vary_nonlinear: arm.learnable,
        n_train_mc: budget.n_train_mc,
        n_val_mc: budget.n_val_mc,
        max_epochs: budget.max_epochs,
        patience: budget.patience,
        ..TrainConfig::default()
    };

    let (pnn, _) = train_best_of_seeds(
        &config,
        surrogate,
        &train_config,
        train_d,
        val_d,
        &budget.seeds,
    )?;
    let stats = mc_evaluate(
        &pnn,
        test_d,
        &VariationModel::Uniform {
            epsilon: test_epsilon,
        },
        budget.n_test,
        budget.mc_seed,
    )?;
    Ok(CellResult {
        arm,
        train_epsilon: if arm.variation_aware {
            train_epsilon
        } else {
            0.0
        },
        test_epsilon,
        stats,
    })
}

/// Runs one dataset row of Tab. II: 6 trainings, 8 evaluations.
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_dataset_row(
    dataset: &Dataset,
    surrogate: Arc<SurrogateModel>,
    budget: &Budget,
) -> Result<DatasetRow, PnnError> {
    let mut cells = Vec::with_capacity(8);
    for learnable in [false, true] {
        // Nominal arm: one training, tested at both 5 % and 10 %.
        let arm = Arm {
            learnable,
            variation_aware: false,
        };
        for test_eps in [0.05, 0.10] {
            cells.push(run_cell(
                dataset,
                arm,
                0.0,
                test_eps,
                surrogate.clone(),
                budget,
            )?);
        }
        // Variation-aware arm: trained at the matching ε.
        let arm = Arm {
            learnable,
            variation_aware: true,
        };
        for eps in [0.05, 0.10] {
            cells.push(run_cell(dataset, arm, eps, eps, surrogate.clone(), budget)?);
        }
    }
    // Reorder into the paper's column layout: fixed-nominal@5/@10,
    // fixed-VA@5/@10, learnable-nominal@5/@10, learnable-VA@5/@10 — which is
    // exactly the insertion order above.
    Ok(DatasetRow {
        dataset: dataset.name.clone(),
        cells,
    })
}

/// Runs the complete Tab. II grid over `datasets`.
///
/// Progress is reported on stderr per dataset (the grid takes minutes at the
/// scaled budget and hours at the paper budget).
///
/// # Errors
///
/// Propagates training and evaluation failures.
pub fn run_table2(
    datasets: &[Dataset],
    surrogate: Arc<SurrogateModel>,
    budget: &Budget,
) -> Result<Table2, PnnError> {
    let mut rows = Vec::with_capacity(datasets.len());
    for (i, dataset) in datasets.iter().enumerate() {
        let start = std::time::Instant::now();
        let row = run_dataset_row(dataset, surrogate.clone(), budget)?;
        eprintln!(
            "[{}/{}] {} done in {:.1}s",
            i + 1,
            datasets.len(),
            dataset.name,
            start.elapsed().as_secs_f64()
        );
        rows.push(row);
    }
    Ok(Table2 {
        budget: budget.clone(),
        rows,
    })
}

/// Like [`run_table2`], but fans the datasets out over a rayon thread pool.
///
/// Every dataset row is computed by the same deterministic procedure as the
/// sequential runner, so the result is identical — only wall-clock time (on
/// multi-core machines) and progress-line ordering differ.
///
/// # Errors
///
/// Propagates the first training or evaluation failure.
pub fn run_table2_parallel(
    datasets: &[Dataset],
    surrogate: Arc<SurrogateModel>,
    budget: &Budget,
) -> Result<Table2, PnnError> {
    use rayon::prelude::*;
    let rows: Result<Vec<DatasetRow>, PnnError> = datasets
        .par_iter()
        .map(|dataset| {
            let start = std::time::Instant::now();
            let row = run_dataset_row(dataset, surrogate.clone(), budget)?;
            eprintln!(
                "{} done in {:.1}s",
                dataset.name,
                start.elapsed().as_secs_f64()
            );
            Ok(row)
        })
        .collect();
    Ok(Table2 {
        budget: budget.clone(),
        rows: rows?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_from_args() {
        let scaled = Budget::from_args(&[]);
        assert_eq!(scaled, Budget::scaled());
        let full = Budget::from_args(&["--full".into()]);
        assert_eq!(full.seeds.len(), 10);
        assert_eq!(full.patience, 5000);
        let custom = Budget::from_args(&[
            "--seeds".into(),
            "2".into(),
            "--epochs".into(),
            "50".into(),
            "--ntest".into(),
            "7".into(),
        ]);
        assert_eq!(custom.seeds, vec![1, 2]);
        assert_eq!(custom.max_epochs, 50);
        assert_eq!(custom.patience, 50);
        assert_eq!(custom.n_test, 7);
    }

    #[test]
    fn arms_enumerate_the_ablation() {
        assert_eq!(Arm::ALL.len(), 4);
        assert!(Arm::ALL[0].label().contains("fixed"));
        assert!(Arm::ALL[3].label().contains("learnable"));
        assert!(Arm::ALL[3].label().contains("variation-aware"));
    }

    #[test]
    fn table2_round_trips_through_json() {
        let t = Table2 {
            budget: Budget::scaled(),
            rows: vec![DatasetRow {
                dataset: "toy".into(),
                cells: vec![CellResult {
                    arm: Arm {
                        learnable: true,
                        variation_aware: true,
                    },
                    train_epsilon: 0.05,
                    test_epsilon: 0.05,
                    stats: McStats {
                        mean: 0.9,
                        std: 0.01,
                        accuracies: vec![0.9, 0.9],
                    },
                }],
            }],
        };
        let path = std::env::temp_dir().join("pnc_bench_table2_test.json");
        t.save(&path).unwrap();
        let back = Table2::load(&path).unwrap();
        assert_eq!(back.rows[0].dataset, "toy");
        assert_eq!(back.rows[0].cells.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
