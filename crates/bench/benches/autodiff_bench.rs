//! Forward/backward throughput of the tape autodiff engine on a
//! pNN-shaped computation.

use criterion::{criterion_group, criterion_main, Criterion};
use pnc_autodiff::Graph;
use pnc_linalg::Matrix;
use std::hint::black_box;

fn crossbar_like_pass(batch: usize, inputs: usize, outputs: usize) -> f64 {
    let mut g = Graph::new();
    let x = g.constant(Matrix::from_fn(batch, inputs, |i, j| {
        ((i * 7 + j * 3) % 11) as f64 / 10.0
    }));
    let theta = g.leaf(Matrix::from_fn(inputs + 2, outputs, |i, j| {
        0.05 + ((i + 2 * j) % 9) as f64 / 10.0
    }));
    let magnitude = g.abs(theta);
    let total = g.sum_rows(magnitude);
    let weights = g.div(magnitude, total).expect("shapes");
    let ones = g.constant(Matrix::filled(batch, 1, 1.0));
    let zeros = g.constant(Matrix::filled(batch, 1, 0.0));
    let x_ext = g.concat_cols(&[x, ones, zeros]).expect("shapes");
    let z = g.matmul(x_ext, weights).expect("shapes");
    let a = g.tanh(z);
    let loss = g.mean(a);
    let grads = g.backward(loss).expect("scalar loss");
    grads.get(theta).expect("grad").norm()
}

fn bench_autodiff(c: &mut Criterion) {
    c.bench_function("autodiff/crossbar_fwd_bwd_b128_in16_out10", |b| {
        b.iter(|| black_box(crossbar_like_pass(128, 16, 10)))
    });
    c.bench_function("autodiff/crossbar_fwd_bwd_b1024_in16_out10", |b| {
        b.iter(|| black_box(crossbar_like_pass(1024, 16, 10)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_autodiff
}
criterion_main!(benches);
