//! Surrogate-model throughput: plain inference and the differentiable
//! in-graph path the pNN trains through.

use criterion::{criterion_group, criterion_main, Criterion};
use pnc_autodiff::Graph;
use pnc_linalg::Matrix;
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, SurrogateModel, TrainConfig};
use std::hint::black_box;

fn small_surrogate() -> SurrogateModel {
    let data = build_dataset(&DatasetConfig {
        samples: 150,
        sweep_points: 31,
    })
    .expect("dataset builds");
    train_surrogate(
        &data,
        &TrainConfig {
            max_epochs: 200,
            patience: 100,
            ..TrainConfig::default()
        },
    )
    .expect("trains")
    .0
}

fn bench_surrogate(c: &mut Criterion) {
    let model = small_surrogate();
    let omega = [200.0, 100.0, 3e5, 1.5e5, 1e5, 800e-6, 20e-6];

    c.bench_function("surrogate/predict_eta_plain", |b| {
        b.iter(|| black_box(model.predict_eta(black_box(&omega))))
    });

    c.bench_function("surrogate/predict_eta_graph_with_backward", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let node = g.leaf(Matrix::row_vector(&omega));
            let eta = model.predict_eta_graph(&mut g, node).expect("valid");
            let loss = g.sum(eta);
            let grads = g.backward(loss).expect("scalar");
            black_box(grads.get(node).expect("grad").norm())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_surrogate
}
criterion_main!(benches);
