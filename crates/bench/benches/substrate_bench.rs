//! Throughput of the low-level substrates: dense linear algebra and quasi
//! Monte-Carlo sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use pnc_linalg::{Lu, Matrix};
use pnc_qmc::{Halton, Sobol};
use std::hint::black_box;

fn bench_linalg(c: &mut Criterion) {
    // MNA-sized solve: the inner loop of every Newton iteration.
    let n = 8;
    let mut a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0);
    for i in 0..n {
        a[(i, i)] += 10.0;
    }
    let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
    c.bench_function("linalg/lu_factor_solve_8x8", |bch| {
        bch.iter(|| {
            let lu = Lu::factor(black_box(&a)).expect("nonsingular");
            lu.solve(black_box(&b)).expect("sized")
        })
    });

    // Surrogate-sized matmul: a training-batch linear layer.
    let x = Matrix::from_fn(1024, 10, |i, j| ((i + j) % 7) as f64 / 7.0);
    let w = Matrix::from_fn(10, 9, |i, j| ((i * 3 + j) % 5) as f64 / 5.0);
    c.bench_function("linalg/matmul_1024x10x9", |bch| {
        bch.iter(|| black_box(&x).matmul(black_box(&w)).expect("shapes"))
    });
}

fn bench_qmc(c: &mut Criterion) {
    c.bench_function("qmc/sobol_1000_points_7d", |bch| {
        bch.iter(|| {
            let mut s = Sobol::new(7).expect("supported dim");
            black_box(s.take(1000))
        })
    });
    c.bench_function("qmc/halton_1000_points_7d", |bch| {
        bch.iter(|| {
            let mut h = Halton::new(7).expect("supported dim");
            black_box(h.take(1000))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_linalg, bench_qmc
}
criterion_main!(benches);
