//! Printed-neural-network training throughput: the per-epoch cost of
//! nominal and variation-aware training, and Monte-Carlo evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use pnc_core::{mc_evaluate, LabeledData, Pnn, PnnConfig, TrainConfig, Trainer, VariationModel};
use pnc_linalg::{Matrix, ParallelConfig};
use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig as STrain};
use std::hint::black_box;
use std::sync::Arc;

fn fixture() -> (Arc<pnc_surrogate::SurrogateModel>, Matrix, Vec<usize>) {
    let data = build_dataset(&DatasetConfig {
        samples: 150,
        sweep_points: 31,
    })
    .expect("dataset builds");
    let surrogate = Arc::new(
        train_surrogate(
            &data,
            &STrain {
                layer_sizes: vec![10, 8, 4],
                max_epochs: 200,
                patience: 100,
                ..STrain::default()
            },
        )
        .expect("trains")
        .0,
    );
    let x = Matrix::from_fn(128, 6, |i, j| ((i * 5 + j * 3) % 13) as f64 / 12.0);
    let y = (0..128).map(|i| i % 3).collect();
    (surrogate, x, y)
}

fn bench_pnn(c: &mut Criterion) {
    let (surrogate, x, y) = fixture();

    c.bench_function("pnn/train_10_epochs_nominal_b128", |b| {
        b.iter(|| {
            let mut pnn = Pnn::new(PnnConfig::for_dataset(6, 3), surrogate.clone()).expect("valid");
            let data = LabeledData::new(&x, &y).expect("consistent");
            Trainer::new(TrainConfig {
                max_epochs: 10,
                patience: 10,
                ..TrainConfig::default()
            })
            .train(&mut pnn, data, data)
            .expect("trains")
        })
    });

    c.bench_function("pnn/train_10_epochs_variation_aware_mc5_b128", |b| {
        b.iter(|| {
            let mut pnn = Pnn::new(PnnConfig::for_dataset(6, 3), surrogate.clone()).expect("valid");
            let data = LabeledData::new(&x, &y).expect("consistent");
            Trainer::new(TrainConfig {
                variation: VariationModel::Uniform { epsilon: 0.1 },
                n_train_mc: 5,
                n_val_mc: 2,
                max_epochs: 10,
                patience: 10,
                ..TrainConfig::default()
            })
            .train(&mut pnn, data, data)
            .expect("trains")
        })
    });

    // Serial vs parallel Monte-Carlo loss: the same variation-aware epochs
    // at one worker and at four. Results are bit-identical (see
    // `training_is_bit_identical_across_thread_counts`); only wall time
    // differs.
    for (label, parallel) in [
        ("pnn/train_5_epochs_mc8_serial", ParallelConfig::serial()),
        (
            "pnn/train_5_epochs_mc8_threads4",
            ParallelConfig::with_threads(4),
        ),
    ] {
        c.bench_function(label, |b| {
            b.iter(|| {
                let mut pnn =
                    Pnn::new(PnnConfig::for_dataset(6, 3), surrogate.clone()).expect("valid");
                let data = LabeledData::new(&x, &y).expect("consistent");
                Trainer::new(TrainConfig {
                    variation: VariationModel::Uniform { epsilon: 0.1 },
                    n_train_mc: 8,
                    n_val_mc: 2,
                    max_epochs: 5,
                    patience: 5,
                    parallel,
                    ..TrainConfig::default()
                })
                .train(&mut pnn, data, data)
                .expect("trains")
            })
        });
    }

    let pnn = Pnn::new(PnnConfig::for_dataset(6, 3), surrogate).expect("valid");
    c.bench_function("pnn/mc_evaluate_50_draws_b128", |b| {
        b.iter(|| {
            let data = LabeledData::new(&x, &y).expect("consistent");
            black_box(
                mc_evaluate(&pnn, data, &VariationModel::Uniform { epsilon: 0.1 }, 50, 0)
                    .expect("evaluates"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pnn
}
criterion_main!(benches);
