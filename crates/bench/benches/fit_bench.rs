//! Throughput of the Levenberg–Marquardt ptanh extraction (the per-circuit
//! cost of the surrogate dataset build).

use criterion::{criterion_group, criterion_main, Criterion};
use pnc_fit::{fit_ptanh, Ptanh};
use std::hint::black_box;

fn curve(n: usize) -> Vec<(f64, f64)> {
    let truth = Ptanh {
        eta: [0.55, 0.4, 0.6, 8.0],
    };
    (0..n)
        .map(|i| {
            let x = i as f64 / (n - 1) as f64;
            (x, truth.eval(x))
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let clean = curve(61);
    c.bench_function("fit/ptanh_61pts_clean", |b| {
        b.iter(|| fit_ptanh(black_box(&clean)).expect("fits"))
    });

    // A flat curve exercises the multi-start fallback path.
    let flat: Vec<(f64, f64)> = (0..61).map(|i| (i as f64 / 60.0, 0.81)).collect();
    c.bench_function("fit/ptanh_61pts_flat", |b| {
        b.iter(|| fit_ptanh(black_box(&flat)).expect("fits"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fit
}
criterion_main!(benches);
