//! Throughput of the DC circuit-simulation substrate: operating points and
//! transfer-curve sweeps of the paper's nonlinear circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit};
use pnc_spice::sweep::linspace;
use pnc_spice::{Circuit, DcSolver, GROUND};
use std::hint::black_box;

fn bench_dc_operating_point(c: &mut Criterion) {
    // A representative resistive network with one EGT inverter.
    let mut ckt = Circuit::new();
    let vdd = ckt.new_node();
    let vin = ckt.new_node();
    let out = ckt.new_node();
    ckt.vsource(vdd, GROUND, 1.0).expect("valid");
    ckt.vsource(vin, GROUND, 0.5).expect("valid");
    ckt.resistor(vdd, out, 100_000.0).expect("valid");
    ckt.egt(
        out,
        vin,
        GROUND,
        pnc_spice::EgtModel::printed(400e-6, 40e-6),
    )
    .expect("valid");
    let solver = DcSolver::new();

    c.bench_function("spice/dc_operating_point_inverter", |b| {
        b.iter(|| solver.solve(black_box(&ckt)).expect("converges"))
    });
}

fn bench_ptanh_transfer_curve(c: &mut Criterion) {
    let params = NonlinearCircuitParams::nominal();
    let grid = linspace(0.0, 1.0, 61);
    c.bench_function("spice/ptanh_transfer_curve_61pts", |b| {
        b.iter(|| {
            let mut circuit = PtanhCircuit::build(black_box(&params)).expect("builds");
            circuit.transfer_curve(&grid).expect("sweeps")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dc_operating_point, bench_ptanh_transfer_curve
}
criterion_main!(benches);
