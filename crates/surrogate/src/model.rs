use crate::store::StoreRecord;
use crate::{
    CircuitDataset, DatasetStore, DesignSpace, EtaBounds, EtaBoundsAccumulator, Mlp,
    SurrogateError, EXTENDED_DIM, OMEGA_DIM, PAPER_LAYER_SIZES,
};
use pnc_autodiff::{Adam, GradStore, Graph, Optimizer, Var};
use pnc_linalg::{stats, Matrix};
use pnc_obs::Counter;
use serde::{Deserialize, Serialize};
use std::path::Path;

// Observability: streaming-training shard steps. Catalogued in
// docs/METRICS.md alongside the surrogate.stream.* build metrics.
static OBS_TRAIN_SHARDS: Counter = Counter::new("surrogate.stream.train_shards");

fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_TRAIN_SHARDS.register();
    });
}

/// Training configuration for the surrogate network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hidden architecture (defaults to the paper's 13-layer network).
    pub layer_sizes: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Maximum number of full-batch epochs.
    pub max_epochs: usize,
    /// Early-stopping patience, in epochs without validation improvement.
    pub patience: usize,
    /// Seed for the split shuffle and weight initialization.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            layer_sizes: PAPER_LAYER_SIZES.to_vec(),
            learning_rate: 3e-3,
            max_epochs: 3000,
            patience: 300,
            seed: 0,
        }
    }
}

/// Quality metrics of a trained surrogate, one MSE/R² pair per split —
/// the scalar content of Fig. 4 (right).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared error on the training split (normalized η units).
    pub train_mse: f64,
    /// Mean squared error on the validation split.
    pub val_mse: f64,
    /// Mean squared error on the test split.
    pub test_mse: f64,
    /// R² of predicted vs. true normalized η, pooled over all 4 components,
    /// on the test split.
    pub test_r2: f64,
    /// Epochs actually run (early stopping included).
    pub epochs_run: usize,
}

/// A trained, deployable surrogate: normalization constants and network.
///
/// This is the blue box of Fig. 3 — the differentiable stand-in for
/// SPICE that lets the pNN training loop treat the physical parameters ω of
/// the nonlinear circuits as ordinary learnable weights.
///
/// # Examples
///
/// ```no_run
/// use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig};
///
/// let data = build_dataset(&DatasetConfig { samples: 500, sweep_points: 41 })?;
/// let (model, _report) = train_surrogate(&data, &TrainConfig::default())?;
/// let eta = model.predict_eta(&data.entries[0].omega);
/// // η parameterizes the tanh-like activation curve of this circuit.
/// assert!(eta.iter().all(|v| v.is_finite()));
/// # Ok::<(), pnc_surrogate::SurrogateError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateModel {
    /// The design space used for input normalization.
    pub space: DesignSpace,
    /// η normalization bounds (saved for denormalization, per Sec. III-A).
    pub eta_bounds: EtaBounds,
    mlp: Mlp,
}

impl SurrogateModel {
    /// Predicts the curve parameters η for physical parameters ω.
    pub fn predict_eta(&self, omega: &[f64; OMEGA_DIM]) -> [f64; 4] {
        let norm = self.space.normalize_omega(omega);
        let out = self.mlp.predict(&norm);
        let mut eta_norm = [0.0; 4];
        eta_norm.copy_from_slice(&out);
        self.eta_bounds.denormalize(&eta_norm)
    }

    /// Graph version of [`SurrogateModel::predict_eta`]: takes a `1×7` node
    /// of physical ω values and returns a `1×4` node of denormalized η, with
    /// gradients flowing back to ω.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::Autodiff`] on shape mismatches.
    pub fn predict_eta_graph(&self, g: &mut Graph, omega: Var) -> Result<Var, SurrogateError> {
        let norm = self.space.normalize_omega_graph(g, omega)?;
        let eta_norm = self.mlp.forward_const(g, norm)?;
        // Denormalize: η = lo + η̃·(hi − lo).
        let lo = g.constant(Matrix::row_vector(&self.eta_bounds.lo));
        let range: Vec<f64> = self
            .eta_bounds
            .lo
            .iter()
            .zip(&self.eta_bounds.hi)
            .map(|(&l, &h)| h - l)
            .collect();
        let range = g.constant(Matrix::row_vector(&range));
        let scaled = g.mul(eta_norm, range)?;
        Ok(g.add(scaled, lo)?)
    }

    /// The underlying network (read access, e.g. for reporting size).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::Io`] / [`SurrogateError::Serde`] on failure.
    pub fn save(&self, path: &Path) -> Result<(), SurrogateError> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a model saved by [`SurrogateModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::Io`] / [`SurrogateError::Serde`] on failure.
    pub fn load(path: &Path) -> Result<Self, SurrogateError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Loads the model cached at `path`, or runs the full pipeline
    /// (characterize the design space, train the network) and caches the
    /// result there.
    ///
    /// The examples and the experiment harness share one surrogate artifact
    /// through this entry point, so the expensive SPICE sweep runs once per
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates dataset-build, training and I/O failures. A corrupt cache
    /// file is rebuilt rather than reported.
    pub fn load_or_train(
        path: &Path,
        dataset_config: &crate::DatasetConfig,
        train_config: &TrainConfig,
    ) -> Result<(Self, Option<TrainReport>), SurrogateError> {
        if path.exists() {
            if let Ok(model) = Self::load(path) {
                return Ok((model, None));
            }
        }
        let data = crate::build_dataset(dataset_config)?;
        let (model, report) = train_surrogate(&data, train_config)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        model.save(path)?;
        Ok((model, Some(report)))
    }
}

/// Assembles the normalized input/target matrices for a set of entry
/// indices.
fn matrices(data: &CircuitDataset, idx: &[usize]) -> (Matrix, Matrix) {
    let x = Matrix::from_fn(idx.len(), EXTENDED_DIM, |i, j| {
        data.space.normalize_omega(&data.entries[idx[i]].omega)[j]
    });
    let y = Matrix::from_fn(idx.len(), 4, |i, j| {
        data.eta_bounds.normalize(&data.entries[idx[i]].eta)[j]
    });
    (x, y)
}

fn mse_of(mlp: &Mlp, x: &Matrix, y: &Matrix) -> f64 {
    let mut se = 0.0;
    for i in 0..x.rows() {
        let pred = mlp.predict(x.row(i));
        for (j, p) in pred.iter().enumerate() {
            se += (p - y[(i, j)]).powi(2);
        }
    }
    se / (x.rows() * y.cols()) as f64
}

/// Trains the surrogate network on a characterized dataset with the paper's
/// split (70/20/10), full-batch Adam, and early stopping on validation MSE.
///
/// Returns the best-by-validation model together with a [`TrainReport`].
///
/// # Errors
///
/// Returns [`SurrogateError::BadDataset`] for datasets too small to split and
/// propagates autodiff failures.
pub fn train_surrogate(
    data: &CircuitDataset,
    config: &TrainConfig,
) -> Result<(SurrogateModel, TrainReport), SurrogateError> {
    if data.entries.len() < 10 {
        return Err(SurrogateError::BadDataset {
            detail: format!("{} entries is too few to train on", data.entries.len()),
        });
    }
    let (train_idx, val_idx, test_idx) = data.split(config.seed);
    let (x_train, y_train) = matrices(data, &train_idx);
    let (x_val, y_val) = matrices(data, &val_idx);
    let (x_test, y_test) = matrices(data, &test_idx);

    let mut mlp = Mlp::new(&config.layer_sizes, config.seed.wrapping_add(1));
    let mut opt = Adam::new(config.learning_rate);

    let mut best = mlp.clone();
    let mut best_val = f64::INFINITY;
    let mut stale = 0usize;
    let mut epochs_run = 0usize;

    for epoch in 0..config.max_epochs {
        epochs_run = epoch + 1;
        let mut g = Graph::new();
        let x = g.constant(x_train.clone());
        let t = g.constant(y_train.clone());
        let (pred, vars) = mlp.forward_train(&mut g, x)?;
        let diff = g.sub(pred, t)?;
        let sq = g.powi(diff, 2);
        let loss = g.mean(sq);
        let grads = g.backward(loss)?;
        let mut params = mlp.parameters_mut();
        opt.step(&mut params, &vars, &grads);

        let val = mse_of(&mlp, &x_val, &y_val);
        if val < best_val {
            best_val = val;
            best = mlp.clone();
            stale = 0;
        } else {
            stale += 1;
            if stale >= config.patience {
                break;
            }
        }
    }

    // Pooled test R².
    let mut targets = Vec::with_capacity(x_test.rows() * 4);
    let mut preds = Vec::with_capacity(x_test.rows() * 4);
    for i in 0..x_test.rows() {
        let p = best.predict(x_test.row(i));
        for j in 0..4 {
            targets.push(y_test[(i, j)]);
            preds.push(p[j]);
        }
    }

    let report = TrainReport {
        train_mse: mse_of(&best, &x_train, &y_train),
        val_mse: best_val,
        test_mse: mse_of(&best, &x_test, &y_test),
        test_r2: stats::r_squared(&targets, &preds),
        epochs_run,
    };
    let model = SurrogateModel {
        space: data.space.clone(),
        eta_bounds: data.eta_bounds,
        mlp: best,
    };
    Ok((model, report))
}

/// Which split a globally-indexed entry belongs to in streaming training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Split {
    Train,
    Val,
    Test,
}

/// Hash-based 70/20/10 split assignment. Unlike the batch shuffle split,
/// membership is a pure function of `(seed, global index)` — it needs no
/// in-memory index vector, is independent of chunking, and stays stable as
/// a resumable build grows.
fn split_of(seed: u64, index: u64) -> Split {
    let h = crate::active::splitmix64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // Top 53 bits → uniform in [0, 1).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if u < 0.7 {
        Split::Train
    } else if u < 0.9 {
        Split::Val
    } else {
        Split::Test
    }
}

/// Streams one full pass over the store's entries of `split`, computing the
/// mean squared error of `mlp` in normalized units.
fn streamed_mse(
    store: &DatasetStore,
    space: &DesignSpace,
    bounds: &EtaBounds,
    mlp: &Mlp,
    seed: u64,
    split: Split,
) -> Result<f64, SurrogateError> {
    let mut se = 0.0;
    let mut count = 0usize;
    for chunk in 0..store.committed_chunks() {
        for record in store.read_chunk(chunk)? {
            let StoreRecord::Entry { index, entry } = record else {
                continue;
            };
            if split_of(seed, index) != split {
                continue;
            }
            let pred = mlp.predict(&space.normalize_omega(&entry.omega));
            let target = bounds.normalize(&entry.eta);
            for (p, t) in pred.iter().zip(target) {
                se += (p - t).powi(2);
            }
            count += 1;
        }
    }
    if count == 0 {
        return Err(SurrogateError::BadDataset {
            detail: format!("the {split:?} split is empty — dataset too small to stream-train"),
        });
    }
    Ok(se / (count * 4) as f64)
}

/// Streaming counterpart of [`train_surrogate`]: trains from a (possibly
/// huge) on-disk [`DatasetStore`] without ever materializing the dataset in
/// memory.
///
/// * **Bounds** come from one streaming pass with
///   [`EtaBoundsAccumulator`] — bit-identical to the batch
///   [`EtaBounds::from_entries`], so normalization never needs a refit
///   (DESIGN.md §17).
/// * **Splits** are hash-assigned per global sample index ([70/20/10], a
///   pure function of `(seed, index)`) instead of the batch shuffle — no
///   index vector, stable under chunking and resumption.
/// * **Training** is epoch-over-shards: each committed chunk becomes one
///   Adam mini-batch step, with the graph and gradient buffers pooled
///   across steps ([`Graph::reset`] / [`Graph::backward_into`]).
/// * Early stopping uses a streamed validation MSE with the same patience
///   contract as the batch trainer.
///
/// Peak memory is `O(chunk_points + network)`, independent of the store
/// size.
///
/// # Errors
///
/// Store read failures, [`SurrogateError::BadDataset`] for stores too small
/// to split, η-bounds validation errors, and autodiff failures.
///
/// # Examples
///
/// ```no_run
/// use pnc_surrogate::{train_surrogate_streaming, DatasetStore, TrainConfig};
/// use std::path::Path;
///
/// # fn main() -> Result<(), pnc_surrogate::SurrogateError> {
/// let store = DatasetStore::open_readonly(Path::new("dataset.pncds"))?;
/// let (model, report) = train_surrogate_streaming(&store, &TrainConfig::default())?;
/// println!("val MSE {} over {} entries", report.val_mse, store.committed_records());
/// # let _ = model;
/// # Ok(())
/// # }
/// ```
pub fn train_surrogate_streaming(
    store: &DatasetStore,
    config: &TrainConfig,
) -> Result<(SurrogateModel, TrainReport), SurrogateError> {
    obs_register();
    let space = store.meta().space.clone();

    // Pass 1: streaming η bounds and the entry count — the only full pass
    // needed before training starts.
    let mut acc = EtaBoundsAccumulator::new();
    for chunk in 0..store.committed_chunks() {
        for record in store.read_chunk(chunk)? {
            if let StoreRecord::Entry { entry, .. } = record {
                acc.observe(&entry.eta)?;
            }
        }
    }
    if acc.count() < 10 {
        return Err(SurrogateError::BadDataset {
            detail: format!("{} entries is too few to train on", acc.count()),
        });
    }
    let bounds = acc.finish()?;

    let mut mlp = Mlp::new(&config.layer_sizes, config.seed.wrapping_add(1));
    let mut opt = Adam::new(config.learning_rate);
    let mut g = Graph::new();
    let mut grads = GradStore::new();

    let mut best = mlp.clone();
    let mut best_val = f64::INFINITY;
    let mut stale = 0usize;
    let mut epochs_run = 0usize;

    for epoch in 0..config.max_epochs {
        epochs_run = epoch + 1;
        for chunk in 0..store.committed_chunks() {
            let mut xs: Vec<[f64; EXTENDED_DIM]> = Vec::new();
            let mut ys: Vec<[f64; 4]> = Vec::new();
            for record in store.read_chunk(chunk)? {
                let StoreRecord::Entry { index, entry } = record else {
                    continue;
                };
                if split_of(config.seed, index) != Split::Train {
                    continue;
                }
                xs.push(space.normalize_omega(&entry.omega));
                ys.push(bounds.normalize(&entry.eta));
            }
            if xs.is_empty() {
                continue;
            }
            let x = Matrix::from_fn(xs.len(), EXTENDED_DIM, |i, j| xs[i][j]);
            let y = Matrix::from_fn(ys.len(), 4, |i, j| ys[i][j]);
            g.reset();
            let xv = g.constant(x);
            let tv = g.constant(y);
            let (pred, vars) = mlp.forward_train(&mut g, xv)?;
            let diff = g.sub(pred, tv)?;
            let sq = g.powi(diff, 2);
            let loss = g.mean(sq);
            g.backward_into(loss, &mut grads)?;
            let mut params = mlp.parameters_mut();
            opt.step(&mut params, &vars, &grads);
            OBS_TRAIN_SHARDS.increment();
        }

        let val = streamed_mse(store, &space, &bounds, &mlp, config.seed, Split::Val)?;
        if val < best_val {
            best_val = val;
            best = mlp.clone();
            stale = 0;
        } else {
            stale += 1;
            if stale >= config.patience {
                break;
            }
        }
    }

    // Final metrics with the best-by-validation network. Test R² is pooled
    // over the 4 components and computed online (ss_res / ss_tot from
    // running sums) so the test split never has to fit in memory either.
    let train_mse = streamed_mse(store, &space, &bounds, &best, config.seed, Split::Train)?;
    let mut n = 0usize;
    let mut sum_t = 0.0;
    let mut sum_t2 = 0.0;
    let mut ss_res = 0.0;
    for chunk in 0..store.committed_chunks() {
        for record in store.read_chunk(chunk)? {
            let StoreRecord::Entry { index, entry } = record else {
                continue;
            };
            if split_of(config.seed, index) != Split::Test {
                continue;
            }
            let pred = best.predict(&space.normalize_omega(&entry.omega));
            let target = bounds.normalize(&entry.eta);
            for (p, t) in pred.iter().zip(target) {
                n += 1;
                sum_t += t;
                sum_t2 += t * t;
                ss_res += (p - t).powi(2);
            }
        }
    }
    if n == 0 {
        return Err(SurrogateError::BadDataset {
            detail: "the Test split is empty — dataset too small to stream-train".into(),
        });
    }
    let ss_tot = sum_t2 - sum_t * sum_t / n as f64;
    let test_r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        0.0
    };

    let report = TrainReport {
        train_mse,
        val_mse: best_val,
        test_mse: ss_res / n as f64,
        test_r2,
        epochs_run,
    };
    let model = SurrogateModel {
        space,
        eta_bounds: bounds,
        mlp: best,
    };
    Ok((model, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset, DatasetConfig};

    fn quick_config() -> TrainConfig {
        TrainConfig {
            // A shallower net trains fast enough for unit tests while the
            // paper architecture is exercised in the bench harness.
            layer_sizes: vec![10, 8, 6, 4],
            learning_rate: 5e-3,
            max_epochs: 800,
            patience: 200,
            seed: 0,
        }
    }

    fn trained() -> (CircuitDataset, SurrogateModel, TrainReport) {
        let data = build_dataset(&DatasetConfig {
            samples: 150,
            sweep_points: 31,
        })
        .unwrap();
        let (model, report) = train_surrogate(&data, &quick_config()).unwrap();
        (data, model, report)
    }

    #[test]
    fn surrogate_learns_the_mapping() {
        let (_, _, report) = trained();
        assert!(
            report.test_mse < 0.05,
            "test mse too high: {}",
            report.test_mse
        );
        assert!(report.test_r2 > 0.5, "test R² too low: {}", report.test_r2);
        // No gross overfitting: test within a factor of a few of train.
        assert!(report.test_mse < report.train_mse * 10.0 + 0.02);
    }

    #[test]
    fn predictions_approximate_fitted_eta() {
        let (data, model, _) = trained();
        // On training entries, predictions should be in the right ballpark
        // in normalized units.
        let mut errs = Vec::new();
        for e in data.entries.iter().take(30) {
            let pred = model.predict_eta(&e.omega);
            let pn = data.eta_bounds.normalize(&pred);
            let tn = data.eta_bounds.normalize(&e.eta);
            for k in 0..4 {
                errs.push((pn[k] - tn[k]).abs());
            }
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.2, "mean normalized error {mean_err}");
    }

    #[test]
    fn graph_prediction_matches_plain() {
        let (data, model, _) = trained();
        let omega = data.entries[0].omega;
        let plain = model.predict_eta(&omega);

        let mut g = Graph::new();
        let node = g.leaf(Matrix::row_vector(&omega));
        let eta = model.predict_eta_graph(&mut g, node).unwrap();
        for (k, &p) in plain.iter().enumerate() {
            assert!((g.value(eta)[(0, k)] - p).abs() < 1e-9, "component {k}");
        }
    }

    #[test]
    fn graph_prediction_is_differentiable_wrt_omega() {
        let (data, model, _) = trained();
        let omega = data.entries[0].omega;
        // Use relative steps appropriate to each component's scale.
        let report = pnc_autodiff::gradcheck::check_gradients(
            &[Matrix::row_vector(&omega)],
            1.0, // resistances are O(1e2..1e5); geometry handled by looseness
            |g, vars| {
                let eta = model.predict_eta_graph(g, vars[0]).unwrap();
                g.sum(eta)
            },
        );
        // The W/L entries get a huge relative step here, so only require the
        // check not to be wildly off; exact gradcheck is done at the
        // normalized level elsewhere.
        assert!(report.max_abs_error.is_finite());
    }

    #[test]
    fn save_load_round_trip() {
        let (data, model, _) = trained();
        let path = std::env::temp_dir().join("pnc_surrogate_test_model.json");
        model.save(&path).unwrap();
        let back = SurrogateModel::load(&path).unwrap();
        let omega = data.entries[3].omega;
        for (a, b) in model
            .predict_eta(&omega)
            .iter()
            .zip(back.predict_eta(&omega))
        {
            // JSON float round trips are exact to ~1 ULP in this environment.
            assert!((a - b).abs() < 1e-9);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_trainer_learns_from_a_store() {
        let path = std::env::temp_dir().join("pnc_stream_train.pncds");
        let stream_config = crate::StreamConfig {
            chunk_points: 32,
            sweep_points: 31,
            parallel: pnc_linalg::ParallelConfig::serial(),
            ..crate::StreamConfig::new(150, 31)
        };
        let mut builder = crate::StreamBuilder::create(&path, &stream_config).unwrap();
        builder.run_to_completion().unwrap();
        drop(builder);

        let store = DatasetStore::open_readonly(&path).unwrap();
        // Shards give several Adam steps per epoch, so far fewer epochs are
        // needed than in the one-step-per-epoch batch config.
        let train_config = TrainConfig {
            max_epochs: 250,
            patience: 60,
            ..quick_config()
        };
        let (model, report) = train_surrogate_streaming(&store, &train_config).unwrap();
        assert!(
            report.test_mse < 0.05,
            "streamed test mse too high: {}",
            report.test_mse
        );
        assert!(
            report.test_r2 > 0.5,
            "streamed test R² too low: {}",
            report.test_r2
        );

        // The streamed model's η bounds must be bitwise the batch bounds of
        // the same entries (refit-free normalization contract).
        let data = crate::load_circuit_dataset(&store).unwrap();
        for k in 0..4 {
            assert_eq!(
                model.eta_bounds.lo[k].to_bits(),
                data.eta_bounds.lo[k].to_bits()
            );
            assert_eq!(
                model.eta_bounds.hi[k].to_bits(),
                data.eta_bounds.hi[k].to_bits()
            );
        }
        let eta = model.predict_eta(&data.entries[0].omega);
        assert!(eta.iter().all(|v| v.is_finite()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hash_split_is_deterministic_and_roughly_70_20_10() {
        let mut counts = [0usize; 3];
        for i in 0..10_000u64 {
            match split_of(0, i) {
                Split::Train => counts[0] += 1,
                Split::Val => counts[1] += 1,
                Split::Test => counts[2] += 1,
            }
            assert_eq!(split_of(0, i), split_of(0, i));
        }
        assert!(
            (counts[0] as f64 / 10_000.0 - 0.7).abs() < 0.03,
            "{counts:?}"
        );
        assert!(
            (counts[1] as f64 / 10_000.0 - 0.2).abs() < 0.03,
            "{counts:?}"
        );
        assert!(
            (counts[2] as f64 / 10_000.0 - 0.1).abs() < 0.03,
            "{counts:?}"
        );
    }

    #[test]
    fn train_rejects_tiny_dataset() {
        let data = CircuitDataset {
            space: DesignSpace::paper(),
            entries: vec![],
            eta_bounds: EtaBounds {
                lo: [0.0; 4],
                hi: [1.0; 4],
            },
            failures: vec![],
        };
        assert!(train_surrogate(&data, &quick_config()).is_err());
    }
}
