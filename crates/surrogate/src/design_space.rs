use crate::SurrogateError;
use pnc_autodiff::{Graph, Var};
use pnc_qmc::Sobol;
use serde::{Deserialize, Serialize};

/// Number of physical design parameters: `[R1, R2, R3, R4, R5, W, L]`.
pub const OMEGA_DIM: usize = 7;

/// Number of network input features after the ratio extension of Sec. III-A:
/// the 7 physical parameters plus `k₁ = R2/R1`, `k₂ = R4/R3`, `k₃ = W/L`.
pub const EXTENDED_DIM: usize = 10;

/// The feasible design space of the nonlinear circuit (Tab. I of the paper).
///
/// Bounds are in SI units (Ω and m); the inequality constraints `R1 > R2` and
/// `R3 > R4` come from the voltage-divider argument of Sec. III-A.
///
/// # Examples
///
/// ```
/// use pnc_surrogate::DesignSpace;
///
/// let space = DesignSpace::paper();
/// let omega = [200.0, 100.0, 2e5, 1e5, 2e5, 500e-6, 40e-6];
/// assert!(space.contains(&omega));
/// let ext = space.extend(&omega);
/// assert!((ext[7] - 0.5).abs() < 1e-12); // k1 = R2/R1
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Lower bounds of the 7 physical parameters.
    pub lo: [f64; OMEGA_DIM],
    /// Upper bounds of the 7 physical parameters.
    pub hi: [f64; OMEGA_DIM],
}

impl DesignSpace {
    /// The exact box of Tab. I: R1 ∈ \[10, 500\] Ω, R2 ∈ \[5, 250\] Ω,
    /// R3 ∈ \[10, 500\] kΩ, R4 ∈ \[8, 400\] kΩ, R5 ∈ \[10, 500\] kΩ,
    /// W ∈ \[200, 800\] µm, L ∈ \[10, 70\] µm.
    pub fn paper() -> Self {
        DesignSpace {
            lo: [10.0, 5.0, 10e3, 8e3, 10e3, 200e-6, 10e-6],
            hi: [500.0, 250.0, 500e3, 400e3, 500e3, 800e-6, 70e-6],
        }
    }

    /// Returns `true` if `omega` is inside the box *and* satisfies the
    /// divider inequalities.
    pub fn contains(&self, omega: &[f64; OMEGA_DIM]) -> bool {
        omega
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&x, (&lo, &hi))| (lo..=hi).contains(&x))
            && omega[1] < omega[0]
            && omega[3] < omega[2]
    }

    /// Draws `n` quasi Monte-Carlo points from the feasible region.
    ///
    /// Sobol' points in the 7-dim box are filtered by the inequality
    /// constraints (rejection keeps the sequence's space-filling character
    /// over the feasible region). Deterministic: the same `n` always returns
    /// the same points.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::Qmc`] only if the Sobol' generator cannot be
    /// constructed (never, for 7 dimensions).
    pub fn sample(&self, n: usize) -> Result<Vec<[f64; OMEGA_DIM]>, SurrogateError> {
        DesignSampler::new(self)?.next_batch(n)
    }

    /// Extends ω with the three ratio features of Sec. III-A:
    /// `[ω…, R2/R1, R4/R3, W/L]`.
    pub fn extend(&self, omega: &[f64; OMEGA_DIM]) -> [f64; EXTENDED_DIM] {
        [
            omega[0],
            omega[1],
            omega[2],
            omega[3],
            omega[4],
            omega[5],
            omega[6],
            omega[1] / omega[0],
            omega[3] / omega[2],
            omega[5] / omega[6],
        ]
    }

    /// Lower bounds of the 10 extended features (used for min–max input
    /// normalization). Ratio bounds follow from the box: `k₁, k₂ ∈ (0, 1)`
    /// by the inequality constraints, `k₃ ∈ [Wmin/Lmax, Wmax/Lmin]`.
    pub fn extended_lo(&self) -> [f64; EXTENDED_DIM] {
        [
            self.lo[0],
            self.lo[1],
            self.lo[2],
            self.lo[3],
            self.lo[4],
            self.lo[5],
            self.lo[6],
            0.0,
            0.0,
            self.lo[5] / self.hi[6],
        ]
    }

    /// Upper bounds of the 10 extended features.
    pub fn extended_hi(&self) -> [f64; EXTENDED_DIM] {
        [
            self.hi[0],
            self.hi[1],
            self.hi[2],
            self.hi[3],
            self.hi[4],
            self.hi[5],
            self.hi[6],
            1.0,
            1.0,
            self.hi[5] / self.lo[6],
        ]
    }

    /// Min–max normalizes the extended feature vector to `[0, 1]^10`.
    pub fn normalize_extended(&self, ext: &[f64; EXTENDED_DIM]) -> [f64; EXTENDED_DIM] {
        let lo = self.extended_lo();
        let hi = self.extended_hi();
        let mut out = [0.0; EXTENDED_DIM];
        for k in 0..EXTENDED_DIM {
            out[k] = (ext[k] - lo[k]) / (hi[k] - lo[k]);
        }
        out
    }

    /// Convenience: extend then normalize a physical ω.
    pub fn normalize_omega(&self, omega: &[f64; OMEGA_DIM]) -> [f64; EXTENDED_DIM] {
        self.normalize_extended(&self.extend(omega))
    }

    /// Graph version of [`DesignSpace::normalize_omega`]: takes a `1×7` node
    /// of physical values and returns the `1×10` normalized feature node,
    /// keeping every step differentiable so the pNN can learn ω.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::Autodiff`] if `omega` is not `1×7`.
    pub fn normalize_omega_graph(&self, g: &mut Graph, omega: Var) -> Result<Var, SurrogateError> {
        if g.shape(omega) != (1, OMEGA_DIM) {
            return Err(SurrogateError::Autodiff(
                pnc_autodiff::AutodiffError::ShapeMismatch {
                    op: "normalize_omega_graph",
                    lhs: g.shape(omega),
                    rhs: (1, OMEGA_DIM),
                },
            ));
        }
        let r1 = g.slice_cols(omega, 0, 1)?;
        let r2 = g.slice_cols(omega, 1, 1)?;
        let r3 = g.slice_cols(omega, 2, 1)?;
        let r4 = g.slice_cols(omega, 3, 1)?;
        let w = g.slice_cols(omega, 5, 1)?;
        let l = g.slice_cols(omega, 6, 1)?;
        let k1 = g.div(r2, r1)?;
        let k2 = g.div(r4, r3)?;
        let k3 = g.div(w, l)?;
        let ext = g.concat_cols(&[omega, k1, k2, k3])?;

        let lo = self.extended_lo();
        let hi = self.extended_hi();
        let lo_node = g.constant(pnc_linalg::Matrix::row_vector(&lo));
        let range: Vec<f64> = lo.iter().zip(&hi).map(|(&l, &h)| h - l).collect();
        let range_node = g.constant(pnc_linalg::Matrix::row_vector(&range));
        let shifted = g.sub(ext, lo_node)?;
        Ok(g.div(shifted, range_node)?)
    }
}

/// Incremental form of [`DesignSpace::sample`]: carries the Sobol' state
/// across calls, so the concatenation of any sequence of
/// [`next_batch`](DesignSampler::next_batch) calls is **exactly** the prefix
/// a single batch [`DesignSpace::sample`] of the same total would return.
/// This is what lets the streaming builder (`StreamBuilder`) chunk the work
/// arbitrarily and still be bit-identical to the frozen batch oracle.
///
/// # Examples
///
/// ```
/// use pnc_surrogate::{DesignSampler, DesignSpace};
///
/// # fn main() -> Result<(), pnc_surrogate::SurrogateError> {
/// let space = DesignSpace::paper();
/// let batch = space.sample(30)?;
/// let mut sampler = DesignSampler::new(&space)?;
/// let mut chunked = sampler.next_batch(11)?;
/// chunked.extend(sampler.next_batch(19)?);
/// assert_eq!(batch, chunked);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DesignSampler {
    space: DesignSpace,
    sobol: Sobol,
    drawn: usize,
}

impl DesignSampler {
    /// Starts the deterministic feasible-point sequence of `space`.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::Qmc`] only if the Sobol' generator cannot
    /// be constructed (never, for 7 dimensions).
    pub fn new(space: &DesignSpace) -> Result<Self, SurrogateError> {
        Ok(DesignSampler {
            space: space.clone(),
            sobol: Sobol::new(OMEGA_DIM)?,
            drawn: 0,
        })
    }

    /// Feasible points drawn so far across all batches.
    pub fn drawn(&self) -> usize {
        self.drawn
    }

    /// Draws the next `n` feasible points of the sequence.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::BadDataset`] if the rejection loop cannot
    /// find `n` feasible points within a generous attempt cap (only possible
    /// after pathological edits to the bounds).
    pub fn next_batch(&mut self, n: usize) -> Result<Vec<[f64; OMEGA_DIM]>, SurrogateError> {
        let mut out = Vec::with_capacity(n);
        // The acceptance rate of the two inequality constraints is ≈ 0.5, so
        // this loop terminates quickly; the hard cap guards against
        // pathological edits to the bounds.
        let mut attempts = 0usize;
        let max_attempts = 100 * n.max(64);
        while out.len() < n && attempts < max_attempts {
            attempts += 1;
            let unit = self.sobol.next_point();
            let mut omega = [0.0; OMEGA_DIM];
            for (k, u) in unit.iter().enumerate() {
                omega[k] = self.space.lo[k] + u * (self.space.hi[k] - self.space.lo[k]);
            }
            if omega[1] < omega[0] && omega[3] < omega[2] {
                out.push(omega);
            }
        }
        if out.len() < n {
            return Err(SurrogateError::BadDataset {
                detail: format!(
                    "could only draw {} of {} feasible design points",
                    out.len(),
                    n
                ),
            });
        }
        self.drawn += n;
        Ok(out)
    }

    /// Advances the sequence past `n` points without returning them — how a
    /// resumed streaming build fast-forwards to the first uncommitted point.
    /// Drawing is orders of magnitude cheaper than characterizing, so a
    /// resume replays the sequence instead of persisting generator state.
    ///
    /// # Errors
    ///
    /// Same contract as [`DesignSampler::next_batch`].
    pub fn skip(&mut self, n: usize) -> Result<(), SurrogateError> {
        self.next_batch(n).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_linalg::Matrix;

    #[test]
    fn paper_bounds_match_table_one() {
        let s = DesignSpace::paper();
        assert_eq!(s.lo[0], 10.0);
        assert_eq!(s.hi[1], 250.0);
        assert_eq!(s.lo[3], 8e3);
        assert_eq!(s.hi[4], 500e3);
        assert_eq!(s.lo[5], 200e-6);
        assert_eq!(s.hi[6], 70e-6);
    }

    #[test]
    fn contains_enforces_inequalities() {
        let s = DesignSpace::paper();
        let mut omega = [200.0, 100.0, 2e5, 1e5, 2e5, 500e-6, 40e-6];
        assert!(s.contains(&omega));
        omega[1] = 250.0;
        omega[0] = 240.0;
        assert!(!s.contains(&omega), "r2 >= r1 must be infeasible");
    }

    #[test]
    fn samples_are_feasible_and_deterministic() {
        let s = DesignSpace::paper();
        let a = s.sample(100).unwrap();
        let b = s.sample(100).unwrap();
        assert_eq!(a, b);
        for omega in &a {
            assert!(s.contains(omega), "infeasible sample {omega:?}");
        }
    }

    #[test]
    fn samples_cover_the_box() {
        let s = DesignSpace::paper();
        let pts = s.sample(500).unwrap();
        // Every coordinate should span most of its range.
        for k in 0..OMEGA_DIM {
            let min = pts.iter().map(|p| p[k]).fold(f64::INFINITY, f64::min);
            let max = pts.iter().map(|p| p[k]).fold(f64::NEG_INFINITY, f64::max);
            let span = (max - min) / (s.hi[k] - s.lo[k]);
            assert!(span > 0.8, "coordinate {k} spans only {span}");
        }
    }

    #[test]
    fn extension_computes_ratios() {
        let s = DesignSpace::paper();
        let omega = [100.0, 50.0, 1e5, 2.5e4, 3e5, 600e-6, 30e-6];
        let ext = s.extend(&omega);
        assert!((ext[7] - 0.5).abs() < 1e-12);
        assert!((ext[8] - 0.25).abs() < 1e-12);
        assert!((ext[9] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_lands_in_unit_box() {
        let s = DesignSpace::paper();
        for omega in s.sample(200).unwrap() {
            let norm = s.normalize_omega(&omega);
            for (k, v) in norm.iter().enumerate() {
                assert!(
                    (-1e-9..=1.0 + 1e-9).contains(v),
                    "feature {k} out of unit box: {v}"
                );
            }
        }
    }

    #[test]
    fn graph_normalization_matches_plain() {
        let s = DesignSpace::paper();
        let omega = [150.0, 60.0, 2e5, 5e4, 4e5, 700e-6, 25e-6];
        let plain = s.normalize_omega(&omega);

        let mut g = Graph::new();
        let node = g.leaf(Matrix::row_vector(&omega));
        let out = s.normalize_omega_graph(&mut g, node).unwrap();
        let got = g.value(out);
        for k in 0..EXTENDED_DIM {
            assert!(
                (got[(0, k)] - plain[k]).abs() < 1e-12,
                "feature {k}: {} vs {}",
                got[(0, k)],
                plain[k]
            );
        }
    }

    #[test]
    fn graph_normalization_rejects_bad_shape() {
        let s = DesignSpace::paper();
        let mut g = Graph::new();
        let node = g.leaf(Matrix::zeros(1, 3));
        assert!(s.normalize_omega_graph(&mut g, node).is_err());
    }

    #[test]
    fn graph_normalization_is_differentiable() {
        // ω components span 9 orders of magnitude, so check the gradient
        // through relative multipliers: ω = m ⊙ ω₀ with m ≈ 1.
        let s = DesignSpace::paper();
        let omega0 = [150.0, 60.0, 2e5, 5e4, 4e5, 700e-6, 25e-6];
        let report = pnc_autodiff::gradcheck::check_gradients(
            &[Matrix::filled(1, OMEGA_DIM, 1.0)],
            1e-7,
            |g, vars| {
                let base = g.constant(Matrix::row_vector(&omega0));
                let omega = g.mul(vars[0], base).unwrap();
                let n = s.normalize_omega_graph(g, omega).unwrap();
                g.sum(n)
            },
        );
        assert!(report.max_abs_error < 1e-5, "{report:?}");
    }
}
