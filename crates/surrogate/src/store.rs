//! Append-only on-disk dataset store for streaming characterization.
//!
//! A production-scale build (ROADMAP item 2: one million points) cannot hold
//! its dataset in memory and cannot afford to lose hours of SPICE time to a
//! crash. This module gives the streaming builder a durable, resumable
//! format with three properties:
//!
//! * **Append-only chunk frames** — the file is a fixed header followed by
//!   self-checksummed frames of fixed-width records. Nothing is ever
//!   rewritten, so a reader can trust every committed byte and a killed
//!   writer can lose at most its last, uncommitted frame.
//! * **Bit-reproducible** — records serialize `f64` by bit pattern and the
//!   builder is deterministic, so a resumed build produces a file
//!   byte-identical to an uninterrupted one (asserted by tests and the
//!   `surrogate_stream` bench).
//! * **Loud failure** — a torn tail (kill mid-write) is *recovered* with an
//!   explicit [`ResumeReport`] of what was discarded; actual corruption
//!   (bad checksum, bad magic, impossible lengths) is a typed
//!   [`StoreError`], never a silently shortened dataset.
//!
//! Layout (all integers little-endian, all `f64` as LE bit patterns):
//!
//! ```text
//! header:  magic "PNCDSTR1" | version u32 | record_bytes u32 | cause_cap u32
//!          | total_points u64 | chunk_points u64 | sweep_points u32
//!          | sampling u8 | seed u64 | max_failure_fraction f64
//!          | space.lo [7]f64 | space.hi [7]f64 | fnv1a64 of the above
//! frame:   magic "CNK1" | chunk_index u64 | n_records u32
//!          | n_records × record | fnv1a64 of the frame bytes so far
//! record:  index u64 | kind u8 | cause_len u16 | omega [7]f64 | eta [4]f64
//!          | fit_rmse f64 | cause [CAUSE_CAP]u8 (zero-padded)
//! ```
//!
//! The header layout (including the format version) and the record layout
//! are pinned in the `pnc-lint` oracle registry ([`StoreMeta::encode`],
//! [`StoreRecord::encode`]): changing the format requires an explicit
//! re-freeze with a justification, because old stores on disk outlive the
//! code that wrote them.

use crate::{DatasetEntry, DesignSpace, FailureRecord, FailureStage, OMEGA_DIM};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// On-disk format version written into every header. Bump only with a
/// documented migration story; readers reject other versions with a typed
/// [`StoreError::Version`].
pub const FORMAT_VERSION: u32 = 1;

/// Fixed byte budget for a failure record's cause string (UTF-8, truncated
/// at a character boundary). Fixed-width records keep chunk frames seekable
/// without an index.
pub const CAUSE_CAP: usize = 160;

/// Bytes per record: index + kind + cause_len + ω + η + rmse + cause.
pub const RECORD_BYTES: usize = 8 + 1 + 2 + 8 * OMEGA_DIM + 8 * 4 + 8 + CAUSE_CAP;

const HEADER_MAGIC: &[u8; 8] = b"PNCDSTR1";
const CHUNK_MAGIC: &[u8; 4] = b"CNK1";
/// Frame bytes before the records: magic + chunk_index + n_records.
const FRAME_PREFIX: usize = 4 + 8 + 4;
/// Frame bytes after the records: the checksum.
const FRAME_SUFFIX: usize = 8;

/// Typed errors of the dataset store. Every rejection names what was wrong;
/// a reader never gets a silently shortened or reinterpreted dataset.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a dataset store.
    BadMagic,
    /// The file was written by a different format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The header failed validation (checksum, impossible field values).
    HeaderCorrupt {
        /// What failed.
        detail: String,
    },
    /// A *complete* chunk frame failed validation — checksum mismatch, bad
    /// frame magic, out-of-sequence chunk index. Unlike a torn tail this is
    /// data damage, so it is an error rather than a recovery.
    ChunkCorrupt {
        /// Index of the offending chunk (position in the file).
        chunk: u64,
        /// What failed.
        detail: String,
    },
    /// The file ends in a partial chunk frame. `open_resumable` recovers
    /// from this by truncating; read-only opens surface it instead of
    /// guessing.
    TornTail {
        /// Bytes beyond the last committed frame.
        trailing_bytes: u64,
    },
    /// A resume was attempted against a store whose recorded configuration
    /// differs from the caller's.
    MetaMismatch {
        /// Which field differs, with both values.
        detail: String,
    },
    /// The caller asked for something outside the committed data.
    InvalidRequest {
        /// What was asked.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o failed: {e}"),
            StoreError::BadMagic => write!(f, "not a dataset store (bad magic)"),
            StoreError::Version { found, expected } => {
                write!(
                    f,
                    "unsupported store format version {found} (expected {expected})"
                )
            }
            StoreError::HeaderCorrupt { detail } => write!(f, "corrupt store header: {detail}"),
            StoreError::ChunkCorrupt { chunk, detail } => {
                write!(f, "corrupt chunk frame {chunk}: {detail}")
            }
            StoreError::TornTail { trailing_bytes } => write!(
                f,
                "store ends in a partial chunk frame ({trailing_bytes} trailing bytes); \
                 open it resumable to recover"
            ),
            StoreError::MetaMismatch { detail } => {
                write!(f, "store configuration mismatch: {detail}")
            }
            StoreError::InvalidRequest { detail } => write!(f, "invalid store request: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a 64-bit hash — the store's checksum. Not cryptographic; it guards
/// against torn writes and bit rot, the failure modes a local dataset file
/// actually has.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Cursor-style reader over a byte slice; every take is bounds-checked and
/// surfaces as a typed error instead of a panic.
struct Take<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Take<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Take { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.bytes(2)
            .and_then(|b| b.try_into().ok())
            .map(u16::from_le_bytes)
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

/// How the stream's design points are chosen, recorded in the header so a
/// resumed build continues with the policy the store was started under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Low-discrepancy Sobol' draws over the feasible box — the batch
    /// builder's sequence, point for point.
    Uniform,
    /// Committee-disagreement active sampling: each chunk's points are the
    /// highest-uncertainty candidates under the surrogate trained so far
    /// (see [`crate::ActiveConfig`]).
    Active,
}

impl SamplingMode {
    /// Environment variable selecting the mode for builders configured with
    /// the default.
    pub const ENV_VAR: &'static str = "PNC_SURROGATE_SAMPLING";

    fn to_byte(self) -> u8 {
        match self {
            SamplingMode::Uniform => 0,
            SamplingMode::Active => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(SamplingMode::Uniform),
            1 => Some(SamplingMode::Active),
            _ => None,
        }
    }

    /// Resolves the mode from `PNC_SURROGATE_SAMPLING` (`uniform` or
    /// `active`), defaulting to [`SamplingMode::Uniform`] when unset.
    ///
    /// # Errors
    ///
    /// Any other value is a hard [`crate::SurrogateError::Config`] naming
    /// the variable and the offending value — never a silent fallback (the
    /// `PNC_INFER_PRECISION` precedent).
    pub fn from_env() -> Result<Self, crate::SurrogateError> {
        match std::env::var(Self::ENV_VAR) {
            Err(_) => Ok(SamplingMode::Uniform),
            Ok(raw) => match raw.trim() {
                "" | "uniform" => Ok(SamplingMode::Uniform),
                "active" => Ok(SamplingMode::Active),
                other => Err(crate::SurrogateError::Config {
                    detail: format!(
                        "{}={other:?} is not a sampling mode (expected `uniform` or `active`)",
                        Self::ENV_VAR
                    ),
                }),
            },
        }
    }
}

impl fmt::Display for SamplingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingMode::Uniform => write!(f, "uniform"),
            SamplingMode::Active => write!(f, "active"),
        }
    }
}

/// The build configuration recorded in a store's header. A resumed build
/// must match it field for field: continuing a store under different
/// parameters would splice two incompatible datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Target number of design points of the full build.
    pub total_points: u64,
    /// Points characterized (and committed) per chunk frame.
    pub chunk_points: u64,
    /// `V_in` grid points per transfer-curve sweep.
    pub sweep_points: u32,
    /// How design points are chosen.
    pub sampling: SamplingMode,
    /// Base seed of the deterministic per-chunk seed schedule.
    pub seed: u64,
    /// Abort threshold on the failed-point fraction.
    pub max_failure_fraction: f64,
    /// The design space points are drawn from.
    pub space: DesignSpace,
}

impl StoreMeta {
    /// Serializes the header, including magic, format version, layout
    /// constants, every configuration field, and the trailing checksum.
    ///
    /// This function **is** the on-disk header format (version
    /// [`FORMAT_VERSION`]); its content hash is pinned in the `pnc-lint`
    /// oracle registry, so any layout change demands an explicit re-freeze
    /// with a migration justification.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 16 * OMEGA_DIM);
        buf.extend_from_slice(HEADER_MAGIC);
        put_u32(&mut buf, FORMAT_VERSION);
        put_u32(&mut buf, RECORD_BYTES as u32);
        put_u32(&mut buf, CAUSE_CAP as u32);
        put_u64(&mut buf, self.total_points);
        put_u64(&mut buf, self.chunk_points);
        put_u32(&mut buf, self.sweep_points);
        buf.push(self.sampling.to_byte());
        put_u64(&mut buf, self.seed);
        put_f64(&mut buf, self.max_failure_fraction);
        for k in 0..OMEGA_DIM {
            put_f64(&mut buf, self.space.lo[k]);
        }
        for k in 0..OMEGA_DIM {
            put_f64(&mut buf, self.space.hi[k]);
        }
        let checksum = fnv1a64(&buf);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Total encoded header length in bytes.
    pub fn encoded_len() -> usize {
        8 + 4 + 4 + 4 + 8 + 8 + 4 + 1 + 8 + 8 + 8 * OMEGA_DIM * 2 + 8
    }

    fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let corrupt = |detail: &str| StoreError::HeaderCorrupt {
            detail: detail.to_string(),
        };
        if bytes.len() < Self::encoded_len() {
            return Err(corrupt("header shorter than the fixed layout"));
        }
        let body_len = Self::encoded_len() - 8;
        let body = bytes
            .get(..body_len)
            .ok_or_else(|| corrupt("short header"))?;
        let mut t = Take::new(bytes);
        let magic = t.bytes(8).ok_or_else(|| corrupt("missing magic"))?;
        if magic != HEADER_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = t.u32().ok_or_else(|| corrupt("missing version"))?;
        if version != FORMAT_VERSION {
            return Err(StoreError::Version {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let record_bytes = t.u32().ok_or_else(|| corrupt("missing record size"))?;
        if record_bytes as usize != RECORD_BYTES {
            return Err(corrupt(&format!(
                "record size {record_bytes} != expected {RECORD_BYTES}"
            )));
        }
        let cause_cap = t.u32().ok_or_else(|| corrupt("missing cause cap"))?;
        if cause_cap as usize != CAUSE_CAP {
            return Err(corrupt(&format!(
                "cause cap {cause_cap} != expected {CAUSE_CAP}"
            )));
        }
        let total_points = t.u64().ok_or_else(|| corrupt("missing total_points"))?;
        let chunk_points = t.u64().ok_or_else(|| corrupt("missing chunk_points"))?;
        let sweep_points = t.u32().ok_or_else(|| corrupt("missing sweep_points"))?;
        let sampling_byte = t.u8().ok_or_else(|| corrupt("missing sampling mode"))?;
        let sampling = SamplingMode::from_byte(sampling_byte)
            .ok_or_else(|| corrupt(&format!("unknown sampling mode byte {sampling_byte}")))?;
        let seed = t.u64().ok_or_else(|| corrupt("missing seed"))?;
        let max_failure_fraction = t.f64().ok_or_else(|| corrupt("missing failure fraction"))?;
        let mut lo = [0.0; OMEGA_DIM];
        let mut hi = [0.0; OMEGA_DIM];
        for slot in lo.iter_mut() {
            *slot = t.f64().ok_or_else(|| corrupt("missing space bounds"))?;
        }
        for slot in hi.iter_mut() {
            *slot = t.f64().ok_or_else(|| corrupt("missing space bounds"))?;
        }
        let stored_checksum = t.u64().ok_or_else(|| corrupt("missing checksum"))?;
        if stored_checksum != fnv1a64(body) {
            return Err(corrupt("header checksum mismatch"));
        }
        if chunk_points == 0 {
            return Err(corrupt("chunk_points is zero"));
        }
        Ok(StoreMeta {
            total_points,
            chunk_points,
            sweep_points,
            sampling,
            seed,
            max_failure_fraction,
            space: DesignSpace { lo, hi },
        })
    }
}

/// One fixed-width record: a characterized entry or a recorded failure.
/// The streaming builder commits every attempted design point as exactly
/// one record, so `committed records == attempted points` and resume
/// arithmetic never guesses.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreRecord {
    /// A successfully characterized design point.
    Entry {
        /// Global sample index (position in the deterministic point
        /// sequence).
        index: u64,
        /// The characterized entry.
        entry: DatasetEntry,
    },
    /// A design point that failed to characterize.
    Failure(FailureRecord),
}

impl StoreRecord {
    /// The global sample index of this record.
    pub fn index(&self) -> u64 {
        match self {
            StoreRecord::Entry { index, .. } => *index,
            StoreRecord::Failure(f) => f.index as u64,
        }
    }

    /// Serializes the fixed-width record ([`RECORD_BYTES`] bytes). Failure
    /// causes longer than [`CAUSE_CAP`] bytes are truncated at a character
    /// boundary (recorded length is the truncated length).
    ///
    /// This function **is** the on-disk record format; its content hash is
    /// pinned in the `pnc-lint` oracle registry alongside
    /// [`StoreMeta::encode`].
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(RECORD_BYTES);
        let (index, kind, omega, eta, rmse, cause) = match self {
            StoreRecord::Entry { index, entry } => {
                (*index, 0u8, &entry.omega, entry.eta, entry.fit_rmse, "")
            }
            StoreRecord::Failure(f) => {
                let kind = match f.stage {
                    FailureStage::Build => 1u8,
                    FailureStage::Sweep => 2u8,
                    FailureStage::Fit => 3u8,
                };
                (
                    f.index as u64,
                    kind,
                    &f.omega,
                    [0.0; 4],
                    0.0,
                    f.cause.as_str(),
                )
            }
        };
        let mut cause_end = cause.len().min(CAUSE_CAP);
        while cause_end > 0 && !cause.is_char_boundary(cause_end) {
            cause_end -= 1;
        }
        let cause_bytes = cause.as_bytes().get(..cause_end).unwrap_or(&[]);
        put_u64(&mut buf, index);
        buf.push(kind);
        buf.extend_from_slice(&(cause_bytes.len() as u16).to_le_bytes());
        for &v in omega.iter() {
            put_f64(&mut buf, v);
        }
        for v in eta {
            put_f64(&mut buf, v);
        }
        put_f64(&mut buf, rmse);
        buf.extend_from_slice(cause_bytes);
        buf.resize(RECORD_BYTES, 0);
        buf
    }

    fn decode(bytes: &[u8], chunk: u64) -> Result<Self, StoreError> {
        let corrupt = |detail: String| StoreError::ChunkCorrupt { chunk, detail };
        let mut t = Take::new(bytes);
        let index = t.u64().ok_or_else(|| corrupt("short record".into()))?;
        let kind = t.u8().ok_or_else(|| corrupt("short record".into()))?;
        let cause_len = t.u16().ok_or_else(|| corrupt("short record".into()))? as usize;
        if cause_len > CAUSE_CAP {
            return Err(corrupt(format!(
                "cause length {cause_len} exceeds cap {CAUSE_CAP}"
            )));
        }
        let mut omega = [0.0; OMEGA_DIM];
        for slot in omega.iter_mut() {
            *slot = t.f64().ok_or_else(|| corrupt("short record".into()))?;
        }
        let mut eta = [0.0; 4];
        for slot in eta.iter_mut() {
            *slot = t.f64().ok_or_else(|| corrupt("short record".into()))?;
        }
        let fit_rmse = t.f64().ok_or_else(|| corrupt("short record".into()))?;
        let cause_raw = t
            .bytes(CAUSE_CAP)
            .ok_or_else(|| corrupt("short record".into()))?;
        let cause_bytes = cause_raw
            .get(..cause_len)
            .ok_or_else(|| corrupt("cause length beyond record".into()))?;
        let stage = match kind {
            0 => {
                return Ok(StoreRecord::Entry {
                    index,
                    entry: DatasetEntry {
                        omega,
                        eta,
                        fit_rmse,
                    },
                })
            }
            1 => FailureStage::Build,
            2 => FailureStage::Sweep,
            3 => FailureStage::Fit,
            other => return Err(corrupt(format!("unknown record kind {other}"))),
        };
        let cause = std::str::from_utf8(cause_bytes)
            .map_err(|_| corrupt("cause is not valid utf-8".into()))?
            .to_string();
        Ok(StoreRecord::Failure(FailureRecord {
            index: index as usize,
            omega,
            stage,
            cause,
        }))
    }
}

/// What `open_resumable` found and did: how much of the build is committed
/// and whether a torn tail was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeReport {
    /// Complete, checksum-valid chunk frames in the file.
    pub committed_chunks: u64,
    /// Records (= attempted design points) across those frames.
    pub committed_records: u64,
    /// Bytes of a partial trailing frame that were truncated away (a kill
    /// mid-write); `0` for a cleanly closed store.
    pub discarded_bytes: u64,
}

/// An open dataset store: the header's [`StoreMeta`] plus an index of the
/// committed chunk frames. See the module docs for the format.
#[derive(Debug)]
pub struct DatasetStore {
    path: PathBuf,
    meta: StoreMeta,
    /// File offset of each committed chunk frame.
    chunk_offsets: Vec<u64>,
    /// Record count of each committed chunk frame.
    chunk_records: Vec<u32>,
    committed_records: u64,
    /// Append handle; `None` for read-only opens.
    file: Option<File>,
}

impl DatasetStore {
    /// Creates (truncating) a store at `path` and writes its header.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; rejects `chunk_points == 0`.
    pub fn create(path: &Path, meta: &StoreMeta) -> Result<Self, StoreError> {
        if meta.chunk_points == 0 {
            return Err(StoreError::HeaderCorrupt {
                detail: "chunk_points is zero".into(),
            });
        }
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&meta.encode())?;
        file.flush()?;
        Ok(DatasetStore {
            path: path.to_path_buf(),
            meta: meta.clone(),
            chunk_offsets: Vec::new(),
            chunk_records: Vec::new(),
            committed_records: 0,
            file: Some(file),
        })
    }

    /// Opens a store for reading only.
    ///
    /// # Errors
    ///
    /// Everything `open_resumable` rejects, plus [`StoreError::TornTail`]
    /// when the file ends mid-frame — a read-only open never mutates the
    /// file, so it surfaces the torn tail instead of repairing it.
    pub fn open_readonly(path: &Path) -> Result<Self, StoreError> {
        let (store, report) = Self::open_validated(path, false)?;
        if report.discarded_bytes > 0 {
            return Err(StoreError::TornTail {
                trailing_bytes: report.discarded_bytes,
            });
        }
        Ok(store)
    }

    /// Opens a store for appending, validating the committed prefix and
    /// recovering from a torn tail by truncating the partial frame (the
    /// report says how many bytes went).
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for a bad magic/version, header corruption, or
    /// a *complete* frame failing its checksum — corruption is never
    /// repaired by guesswork, only an uncommitted tail is.
    pub fn open_resumable(path: &Path) -> Result<(Self, ResumeReport), StoreError> {
        Self::open_validated(path, true)
    }

    fn open_validated(path: &Path, writable: bool) -> Result<(Self, ResumeReport), StoreError> {
        let mut file = OpenOptions::new().read(true).write(writable).open(path)?;
        let file_len = file.metadata()?.len();
        let mut header = vec![0u8; StoreMeta::encoded_len()];
        if (file_len as usize) < header.len() {
            return Err(StoreError::HeaderCorrupt {
                detail: format!("file is {file_len} bytes, shorter than the header"),
            });
        }
        file.read_exact(&mut header)?;
        let meta = StoreMeta::decode(&header)?;

        // Walk the chunk frames. A frame is committed iff it is complete
        // and its checksum matches; the walk stops at the first incomplete
        // frame (torn tail) and rejects any complete-but-invalid frame.
        let mut offsets = Vec::new();
        let mut records = Vec::new();
        let mut committed_records = 0u64;
        let mut pos = StoreMeta::encoded_len() as u64;
        while pos < file_len {
            let remaining = file_len - pos;
            if remaining < FRAME_PREFIX as u64 {
                break; // torn tail: not even a frame prefix
            }
            let mut prefix = [0u8; FRAME_PREFIX];
            file.seek(SeekFrom::Start(pos))?;
            file.read_exact(&mut prefix)?;
            let chunk_idx = offsets.len() as u64;
            let mut t = Take::new(&prefix);
            let magic = t.bytes(4).unwrap_or(&[]);
            if magic != CHUNK_MAGIC {
                return Err(StoreError::ChunkCorrupt {
                    chunk: chunk_idx,
                    detail: "bad frame magic".into(),
                });
            }
            let stored_index = t.u64().unwrap_or(u64::MAX);
            let n_records = t.u32().unwrap_or(0);
            let frame_len =
                FRAME_PREFIX as u64 + n_records as u64 * RECORD_BYTES as u64 + FRAME_SUFFIX as u64;
            if remaining < frame_len {
                break; // torn tail: frame body incomplete
            }
            if stored_index != chunk_idx {
                return Err(StoreError::ChunkCorrupt {
                    chunk: chunk_idx,
                    detail: format!("frame records chunk index {stored_index}"),
                });
            }
            let body_len = frame_len as usize - FRAME_SUFFIX;
            let mut frame = vec![0u8; frame_len as usize];
            file.seek(SeekFrom::Start(pos))?;
            file.read_exact(&mut frame)?;
            let body = frame.get(..body_len).unwrap_or(&[]);
            let stored_sum = frame
                .get(body_len..)
                .and_then(|b| <[u8; 8]>::try_from(b).ok())
                .map(u64::from_le_bytes)
                .unwrap_or(0);
            if stored_sum != fnv1a64(body) {
                return Err(StoreError::ChunkCorrupt {
                    chunk: chunk_idx,
                    detail: "frame checksum mismatch".into(),
                });
            }
            offsets.push(pos);
            records.push(n_records);
            committed_records += n_records as u64;
            pos += frame_len;
        }

        let discarded = file_len - pos;
        if discarded > 0 && writable {
            file.set_len(pos)?;
            file.flush()?;
        }
        if writable {
            file.seek(SeekFrom::Start(pos.min(file_len)))?;
        }
        let report = ResumeReport {
            committed_chunks: offsets.len() as u64,
            committed_records,
            discarded_bytes: discarded,
        };
        Ok((
            DatasetStore {
                path: path.to_path_buf(),
                meta,
                chunk_offsets: offsets,
                chunk_records: records,
                committed_records,
                file: writable.then_some(file),
            },
            report,
        ))
    }

    /// The header configuration.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Path this store lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Committed (checksum-valid) chunk frames.
    pub fn committed_chunks(&self) -> u64 {
        self.chunk_offsets.len() as u64
    }

    /// Records across all committed frames — one per attempted design
    /// point, entries and failures alike.
    pub fn committed_records(&self) -> u64 {
        self.committed_records
    }

    /// Whether the build this store holds has reached its target.
    pub fn is_complete(&self) -> bool {
        self.committed_records >= self.meta.total_points
    }

    /// Appends one chunk frame and flushes it. The frame's chunk index is
    /// implicit: frames are committed strictly in order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; rejects appends on a read-only store or an
    /// empty record set.
    pub fn append_chunk(&mut self, records: &[StoreRecord]) -> Result<(), StoreError> {
        if records.is_empty() {
            return Err(StoreError::InvalidRequest {
                detail: "refusing to append an empty chunk".into(),
            });
        }
        let chunk_index = self.chunk_offsets.len() as u64;
        let mut frame =
            Vec::with_capacity(FRAME_PREFIX + records.len() * RECORD_BYTES + FRAME_SUFFIX);
        frame.extend_from_slice(CHUNK_MAGIC);
        put_u64(&mut frame, chunk_index);
        put_u32(&mut frame, records.len() as u32);
        for r in records {
            frame.extend_from_slice(&r.encode());
        }
        let checksum = fnv1a64(&frame);
        put_u64(&mut frame, checksum);

        let Some(file) = self.file.as_mut() else {
            return Err(StoreError::InvalidRequest {
                detail: "store was opened read-only".into(),
            });
        };
        let offset = file.seek(SeekFrom::End(0))?;
        file.write_all(&frame)?;
        file.flush()?;
        self.chunk_offsets.push(offset);
        self.chunk_records.push(records.len() as u32);
        self.committed_records += records.len() as u64;
        Ok(())
    }

    /// Reads (and re-validates) one committed chunk frame.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidRequest`] beyond the committed range; typed
    /// corruption errors if the frame no longer matches its checksum.
    pub fn read_chunk(&self, chunk: u64) -> Result<Vec<StoreRecord>, StoreError> {
        let idx = chunk as usize;
        let (Some(&offset), Some(&n_records)) =
            (self.chunk_offsets.get(idx), self.chunk_records.get(idx))
        else {
            return Err(StoreError::InvalidRequest {
                detail: format!(
                    "chunk {chunk} beyond the {} committed frames",
                    self.chunk_offsets.len()
                ),
            });
        };
        let mut file = File::open(&self.path)?;
        let frame_len = FRAME_PREFIX + n_records as usize * RECORD_BYTES + FRAME_SUFFIX;
        let mut frame = vec![0u8; frame_len];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut frame)?;
        let body_len = frame_len - FRAME_SUFFIX;
        let body = frame.get(..body_len).unwrap_or(&[]);
        let stored_sum = frame
            .get(body_len..)
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        if stored_sum != fnv1a64(body) {
            return Err(StoreError::ChunkCorrupt {
                chunk,
                detail: "frame checksum mismatch on read-back".into(),
            });
        }
        let mut out = Vec::with_capacity(n_records as usize);
        for i in 0..n_records as usize {
            let start = FRAME_PREFIX + i * RECORD_BYTES;
            let bytes =
                frame
                    .get(start..start + RECORD_BYTES)
                    .ok_or_else(|| StoreError::ChunkCorrupt {
                        chunk,
                        detail: "record extent beyond frame".into(),
                    })?;
            out.push(StoreRecord::decode(bytes, chunk)?);
        }
        Ok(out)
    }

    /// Materializes every committed record into entry/failure vectors —
    /// the bridge back to the in-memory [`crate::CircuitDataset`] world,
    /// for tests and the batch-equivalence oracle. Defeats the point of
    /// streaming at production scale; keep it to datasets that fit.
    ///
    /// # Errors
    ///
    /// Propagates chunk read/validation failures.
    pub fn load_all(&self) -> Result<(Vec<DatasetEntry>, Vec<FailureRecord>), StoreError> {
        let mut entries = Vec::new();
        let mut failures = Vec::new();
        for chunk in 0..self.committed_chunks() {
            for record in self.read_chunk(chunk)? {
                match record {
                    StoreRecord::Entry { entry, .. } => entries.push(entry),
                    StoreRecord::Failure(f) => failures.push(f),
                }
            }
        }
        Ok((entries, failures))
    }

    /// Verifies the caller's configuration against the header.
    ///
    /// # Errors
    ///
    /// [`StoreError::MetaMismatch`] naming the first differing field.
    pub fn check_meta(&self, expected: &StoreMeta) -> Result<(), StoreError> {
        let m = &self.meta;
        let mismatch = |detail: String| Err(StoreError::MetaMismatch { detail });
        if m.total_points != expected.total_points {
            return mismatch(format!(
                "total_points: store {} vs caller {}",
                m.total_points, expected.total_points
            ));
        }
        if m.chunk_points != expected.chunk_points {
            return mismatch(format!(
                "chunk_points: store {} vs caller {}",
                m.chunk_points, expected.chunk_points
            ));
        }
        if m.sweep_points != expected.sweep_points {
            return mismatch(format!(
                "sweep_points: store {} vs caller {}",
                m.sweep_points, expected.sweep_points
            ));
        }
        if m.sampling != expected.sampling {
            return mismatch(format!(
                "sampling: store {} vs caller {}",
                m.sampling, expected.sampling
            ));
        }
        if m.seed != expected.seed {
            return mismatch(format!(
                "seed: store {} vs caller {}",
                m.seed, expected.seed
            ));
        }
        if m.max_failure_fraction.to_bits() != expected.max_failure_fraction.to_bits() {
            return mismatch(format!(
                "max_failure_fraction: store {} vs caller {}",
                m.max_failure_fraction, expected.max_failure_fraction
            ));
        }
        if m.space != expected.space {
            return mismatch("design space bounds differ".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> StoreMeta {
        StoreMeta {
            total_points: 64,
            chunk_points: 16,
            sweep_points: 21,
            sampling: SamplingMode::Uniform,
            seed: 7,
            max_failure_fraction: 0.05,
            space: DesignSpace::paper(),
        }
    }

    fn entry(i: u64) -> StoreRecord {
        StoreRecord::Entry {
            index: i,
            entry: DatasetEntry {
                omega: [i as f64 + 0.5; OMEGA_DIM],
                eta: [0.1, 0.2, 0.3, 0.4 + i as f64],
                fit_rmse: 1e-3,
            },
        }
    }

    fn failure(i: u64) -> StoreRecord {
        StoreRecord::Failure(FailureRecord {
            index: i as usize,
            omega: [2.0; OMEGA_DIM],
            stage: FailureStage::Sweep,
            cause: "sweep did not converge at V_in = 0.5 (injected)".into(),
        })
    }

    #[test]
    fn header_round_trips() {
        let m = meta();
        let bytes = m.encode();
        assert_eq!(bytes.len(), StoreMeta::encoded_len());
        let back = StoreMeta::decode(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn header_checksum_detects_flips() {
        let mut bytes = meta().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            StoreMeta::decode(&bytes),
            Err(StoreError::HeaderCorrupt { .. })
        ));
    }

    #[test]
    fn record_round_trips_including_failures() {
        for r in [entry(3), failure(9)] {
            let bytes = r.encode();
            assert_eq!(bytes.len(), RECORD_BYTES);
            let back = StoreRecord::decode(&bytes, 0).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn long_causes_truncate_at_char_boundaries() {
        let long_cause = "é".repeat(CAUSE_CAP); // 2 bytes per char
        let r = StoreRecord::Failure(FailureRecord {
            index: 0,
            omega: [1.0; OMEGA_DIM],
            stage: FailureStage::Fit,
            cause: long_cause,
        });
        let bytes = r.encode();
        assert_eq!(bytes.len(), RECORD_BYTES);
        let StoreRecord::Failure(back) = StoreRecord::decode(&bytes, 0).unwrap() else {
            panic!("expected a failure record");
        };
        assert!(back.cause.len() <= CAUSE_CAP);
        assert!(back.cause.chars().all(|c| c == 'é'));
    }

    #[test]
    fn create_append_read_round_trip() {
        let path = std::env::temp_dir().join("pnc_store_round_trip.pncds");
        let mut store = DatasetStore::create(&path, &meta()).unwrap();
        store
            .append_chunk(&[entry(0), failure(1), entry(2)])
            .unwrap();
        store.append_chunk(&[entry(3), entry(4)]).unwrap();
        assert_eq!(store.committed_chunks(), 2);
        assert_eq!(store.committed_records(), 5);

        let read = DatasetStore::open_readonly(&path).unwrap();
        assert_eq!(read.meta(), &meta());
        let (entries, failures) = read.load_all().unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_committed_chunk_is_a_typed_error() {
        let path = std::env::temp_dir().join("pnc_store_corrupt.pncds");
        let mut store = DatasetStore::create(&path, &meta()).unwrap();
        store.append_chunk(&[entry(0), entry(1)]).unwrap();
        drop(store);
        // Flip a byte inside the committed frame's records.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = StoreMeta::encoded_len() + FRAME_PREFIX + 20;
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = DatasetStore::open_resumable(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::ChunkCorrupt { chunk: 0, .. }),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn readonly_open_surfaces_torn_tail() {
        let path = std::env::temp_dir().join("pnc_store_torn_readonly.pncds");
        let mut store = DatasetStore::create(&path, &meta()).unwrap();
        store.append_chunk(&[entry(0)]).unwrap();
        store.append_chunk(&[entry(1)]).unwrap();
        drop(store);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let err = DatasetStore::open_readonly(&path).unwrap_err();
        assert!(matches!(err, StoreError::TornTail { trailing_bytes } if trailing_bytes > 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_and_magic_are_checked() {
        let m = meta();
        let mut bytes = m.encode();
        bytes[0] = b'X';
        assert!(matches!(
            StoreMeta::decode(&bytes),
            Err(StoreError::BadMagic)
        ));

        let mut versioned = m.encode();
        versioned[8] = 99; // version little-endian low byte
                           // Fix the checksum so only the version differs.
        let body_len = StoreMeta::encoded_len() - 8;
        let sum = fnv1a64(&versioned[..body_len]).to_le_bytes();
        versioned[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            StoreMeta::decode(&versioned),
            Err(StoreError::Version { found: 99, .. })
        ));
    }
}
