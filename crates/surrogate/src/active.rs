//! Uncertainty-driven active sampling for the streaming dataset builder.
//!
//! SPICE solves dominate the characterization budget, so once a few chunks
//! exist the builder can afford to be choosy: train a small committee of
//! surrogate networks on what has been characterized so far, score a pool of
//! candidate ω draws by how much the committee members *disagree*, and spend
//! the next chunk's solves where the surrogate is most uncertain (classic
//! query-by-committee). Everything is seeded from the store's base seed and
//! the chunk index, so an active build is deterministic and — because the
//! committee is retrained from the committed prefix — a resumed build picks
//! the exact same points an uninterrupted one would.
//!
//! Each chunk mixes exploration and exploitation: a fixed fraction of the
//! points are plain uniform draws from the candidate stream (so coverage
//! never collapses onto one region), the rest are the top-disagreement
//! candidates.

use crate::{
    DatasetEntry, DesignSpace, EtaBounds, EtaBoundsAccumulator, Mlp, SurrogateError, OMEGA_DIM,
};
use pnc_autodiff::{Adam, GradStore, Graph, Optimizer};
use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Committee and candidate-pool knobs of active sampling. The defaults are
/// deliberately small: the committee must cost a negligible fraction of the
/// SPICE solves it is steering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveConfig {
    /// Committee members (independent seeds and leave-out folds).
    pub committee: usize,
    /// Candidate pool size, as a multiple of the chunk size.
    pub candidate_factor: usize,
    /// Adam epochs per member per chunk.
    pub epochs: usize,
    /// Adam learning rate for committee training.
    pub learning_rate: f64,
    /// Cap on the training subsample the committee sees (the reservoir the
    /// builder maintains; bounds committee cost and memory independently of
    /// the total build size).
    pub reservoir: usize,
    /// Fraction of each chunk drawn uniformly instead of by disagreement
    /// (exploration floor, in `[0, 1]`).
    pub explore_fraction: f64,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        ActiveConfig {
            committee: 4,
            candidate_factor: 8,
            epochs: 160,
            learning_rate: 1e-2,
            reservoir: 1536,
            explore_fraction: 0.25,
        }
    }
}

/// Hidden architecture of committee members: much smaller than the paper's
/// 13-layer surrogate — they only need to rank candidates, not deploy.
const COMMITTEE_SIZES: [usize; 4] = [crate::EXTENDED_DIM, 16, 12, 4];

/// SplitMix64 — the deterministic seed schedule of the streaming pipeline.
/// Per-chunk and per-member seeds are derived from the base seed through
/// this mix so that no two consumers share an RNG stream.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic bounded subsample of the entries characterized so far —
/// the committee's training set. Keeps entries whose global index is a
/// multiple of a stride that doubles whenever the reservoir overflows, so
/// membership depends only on the entry sequence (never on chunking or
/// timing) and a resumed build rebuilds it exactly by replaying the
/// committed chunks.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    stride: u64,
    kept: Vec<(u64, DatasetEntry)>,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` entries (`cap >= 2`).
    pub fn new(cap: usize) -> Self {
        Reservoir {
            cap: cap.max(2),
            stride: 1,
            kept: Vec::new(),
        }
    }

    /// Offers one characterized entry; keeps it if its global index lands on
    /// the current stride.
    pub fn offer(&mut self, global_index: u64, entry: &DatasetEntry) {
        if !global_index.is_multiple_of(self.stride) {
            return;
        }
        self.kept.push((global_index, *entry));
        if self.kept.len() >= self.cap {
            self.stride = self.stride.saturating_mul(2);
            let stride = self.stride;
            self.kept.retain(|(idx, _)| idx % stride == 0);
        }
    }

    /// The retained entries, in arrival (global-index) order.
    pub fn entries(&self) -> impl Iterator<Item = &DatasetEntry> {
        self.kept.iter().map(|(_, e)| e)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }
}

/// A trained query-by-committee ensemble: score candidates by prediction
/// variance in normalized η space.
pub struct Committee {
    members: Vec<Mlp>,
    space: DesignSpace,
    bounds: EtaBounds,
}

impl Committee {
    /// Trains `config.committee` members on the reservoir. Members differ by
    /// weight seed **and** by a leave-one-fold-out slice of the data, so
    /// their disagreement reflects genuine epistemic uncertainty rather than
    /// just init noise.
    ///
    /// Returns `None` (not an error) when the reservoir is too small or its
    /// η bounds are still degenerate — the caller falls back to uniform
    /// draws for that chunk.
    ///
    /// # Errors
    ///
    /// Propagates autodiff failures from training (shape bugs, not data
    /// conditions).
    pub fn train(
        space: &DesignSpace,
        reservoir: &Reservoir,
        config: &ActiveConfig,
        seed: u64,
    ) -> Result<Option<Self>, SurrogateError> {
        let k = config.committee.max(2);
        if reservoir.len() < 4 * k {
            return Ok(None);
        }
        let mut acc = EtaBoundsAccumulator::new();
        for e in reservoir.entries() {
            acc.observe(&e.eta)?;
        }
        let bounds = match acc.finish() {
            Ok(b) => b,
            // Degenerate η over the prefix: nothing to rank yet.
            Err(SurrogateError::DegenerateEta { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };

        let entries: Vec<&DatasetEntry> = reservoir.entries().collect();
        let mut members = Vec::with_capacity(k);
        let mut grads = GradStore::new();
        let mut g = Graph::new();
        for member in 0..k {
            // Fold `member` is left out of this member's training slice.
            let fold: Vec<&DatasetEntry> = entries
                .iter()
                .enumerate()
                .filter(|(i, _)| i % k != member)
                .map(|(_, e)| *e)
                .collect();
            let x = Matrix::from_fn(fold.len(), crate::EXTENDED_DIM, |i, j| {
                space.normalize_omega(&fold[i].omega)[j]
            });
            let y = Matrix::from_fn(fold.len(), 4, |i, j| bounds.normalize(&fold[i].eta)[j]);

            let member_seed =
                splitmix64(seed ^ (member as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
            let mut mlp = Mlp::new(&COMMITTEE_SIZES, member_seed);
            let mut opt = Adam::new(config.learning_rate);
            for _ in 0..config.epochs {
                g.reset();
                let xv = g.constant(x.clone());
                let tv = g.constant(y.clone());
                let (pred, vars) = mlp.forward_train(&mut g, xv)?;
                let diff = g.sub(pred, tv)?;
                let sq = g.powi(diff, 2);
                let loss = g.mean(sq);
                g.backward_into(loss, &mut grads)?;
                let mut params = mlp.parameters_mut();
                opt.step(&mut params, &vars, &grads);
            }
            members.push(mlp);
        }
        Ok(Some(Committee {
            members,
            space: space.clone(),
            bounds,
        }))
    }

    /// The committee's disagreement on one candidate: per-component variance
    /// of the members' predictions in normalized η space, summed over the
    /// four components. Higher means the surrogate is less sure.
    pub fn disagreement(&self, omega: &[f64; OMEGA_DIM]) -> f64 {
        let norm = self.space.normalize_omega(omega);
        let mut preds: Vec<Vec<f64>> = Vec::with_capacity(self.members.len());
        for m in &self.members {
            preds.push(m.predict(&norm));
        }
        let k = preds.len() as f64;
        let mut score = 0.0;
        for j in 0..4 {
            let mean: f64 = preds.iter().map(|p| p[j]).sum::<f64>() / k;
            let var: f64 = preds.iter().map(|p| (p[j] - mean).powi(2)).sum::<f64>() / k;
            score += var;
        }
        score
    }

    /// The η bounds the committee was trained against (for diagnostics).
    pub fn bounds(&self) -> &EtaBounds {
        &self.bounds
    }
}

/// Draws `n` feasible points uniformly from the box with the given RNG —
/// the active path's candidate generator and its exploration/fallback
/// stream. (Plain uniform, not Sobol': the batch-oracle Sobol' sequence is
/// reserved for `SamplingMode::Uniform` so its bit-identity stays intact.)
///
/// # Errors
///
/// Returns [`SurrogateError::BadDataset`] if rejection cannot find `n`
/// feasible points within a generous cap.
pub(crate) fn draw_uniform(
    space: &DesignSpace,
    rng: &mut StdRng,
    n: usize,
) -> Result<Vec<[f64; OMEGA_DIM]>, SurrogateError> {
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    let max_attempts = 100 * n.max(64);
    while out.len() < n && attempts < max_attempts {
        attempts += 1;
        let mut omega = [0.0; OMEGA_DIM];
        for (k, w) in omega.iter_mut().enumerate() {
            *w = rng.gen_range(space.lo[k]..space.hi[k]);
        }
        if omega[1] < omega[0] && omega[3] < omega[2] {
            out.push(omega);
        }
    }
    if out.len() < n {
        return Err(SurrogateError::BadDataset {
            detail: format!("could only draw {} of {n} feasible candidates", out.len()),
        });
    }
    Ok(out)
}

/// Squared Euclidean distance in normalized (ratio-augmented) ω space —
/// the diversity metric of [`select_chunk`].
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Picks the next chunk's `chunk_points` design points: an exploration slice
/// of uniform draws plus a greedy diversity-aware sweep over a pool of
/// `candidate_factor × chunk_points` uniform draws. Each exploitation pick
/// maximizes `disagreement × min-distance-to-already-chosen` (in normalized
/// ω space), so high-uncertainty picks cannot collapse onto one region — a
/// plain top-k by disagreement clusters at the committee's worst corner and
/// loses to Sobol' coverage on global RMSE. Fully deterministic in
/// `chunk_seed`; ties break toward the earlier candidate.
///
/// Returns the chosen points and the mean disagreement over the pool (the
/// `surrogate.stream.disagreement` observable).
///
/// # Errors
///
/// Propagates candidate-draw failures.
pub(crate) fn select_chunk(
    committee: &Committee,
    space: &DesignSpace,
    chunk_points: usize,
    config: &ActiveConfig,
    chunk_seed: u64,
) -> Result<(Vec<[f64; OMEGA_DIM]>, f64), SurrogateError> {
    let mut rng = StdRng::seed_from_u64(chunk_seed);
    let pool = draw_uniform(
        space,
        &mut rng,
        chunk_points * config.candidate_factor.max(2),
    )?;

    let explore = ((chunk_points as f64) * config.explore_fraction.clamp(0.0, 1.0))
        .round()
        .min(chunk_points as f64) as usize;
    let exploit = chunk_points - explore;

    // The first `explore` pool points are taken as-is (they are themselves
    // uniform draws); the rest of the pool competes on disagreement.
    let mut chosen: Vec<[f64; OMEGA_DIM]> = pool.iter().take(explore).copied().collect();
    let mut chosen_norm: Vec<[f64; crate::EXTENDED_DIM]> =
        chosen.iter().map(|o| space.normalize_omega(o)).collect();

    let rest = pool.get(explore..).unwrap_or(&[]);
    // (candidate, normalized candidate, disagreement, min dist² to chosen).
    struct Candidate {
        omega: [f64; OMEGA_DIM],
        norm: [f64; crate::EXTENDED_DIM],
        disagreement: f64,
        min_dist_sq: f64,
    }
    let mut candidates: Vec<Candidate> = rest
        .iter()
        .map(|omega| {
            let norm = space.normalize_omega(omega);
            let min_dist_sq = chosen_norm
                .iter()
                .map(|c| dist_sq(&norm, c))
                .fold(f64::INFINITY, f64::min);
            Candidate {
                omega: *omega,
                disagreement: committee.disagreement(omega),
                norm,
                min_dist_sq,
            }
        })
        .collect();
    let mean_disagreement = if candidates.is_empty() {
        0.0
    } else {
        candidates.iter().map(|c| c.disagreement).sum::<f64>() / candidates.len() as f64
    };

    for _ in 0..exploit {
        // Greedy argmax of disagreement × min-distance; the very first pick
        // of an exploration-free chunk has no chosen points yet, so its
        // distance factor is neutral (∞ min-distance clamps to 1).
        let best = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let spread = if c.min_dist_sq.is_finite() {
                    c.min_dist_sq.sqrt()
                } else {
                    1.0
                };
                (i, c.disagreement * spread)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i);
        let Some(best) = best else { break };
        let picked = candidates.swap_remove(best);
        for c in &mut candidates {
            c.min_dist_sq = c.min_dist_sq.min(dist_sq(&c.norm, &picked.norm));
        }
        chosen_norm.push(picked.norm);
        chosen.push(picked.omega);
    }
    if chosen.len() != chunk_points {
        return Err(SurrogateError::BadDataset {
            detail: format!(
                "active selection produced {} of {chunk_points} points",
                chosen.len()
            ),
        });
    }
    Ok((chosen, mean_disagreement))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_entry(i: u64) -> DatasetEntry {
        // A smooth synthetic ω → η map over the paper box; cheap enough to
        // build large reservoirs without SPICE.
        let space = DesignSpace::paper();
        let t = (i as f64) / 97.0;
        let mut omega = [0.0; OMEGA_DIM];
        for (k, w) in omega.iter_mut().enumerate() {
            let u = ((t * (k as f64 + 1.3)).sin() * 0.5 + 0.5).clamp(0.01, 0.99);
            *w = space.lo[k] + u * (space.hi[k] - space.lo[k]);
        }
        // Keep the divider constraints satisfied.
        omega[1] = omega[1].min(omega[0] * 0.9);
        omega[3] = omega[3].min(omega[2] * 0.9);
        let n = space.normalize_omega(&omega);
        DatasetEntry {
            omega,
            eta: [
                n[0] + 0.3 * n[7],
                (n[2] * 2.0).sin() * 0.5 + 1.0,
                n[9] * 0.8 + 0.1,
                n[4] * n[5] + 0.2,
            ],
            fit_rmse: 1e-3,
        }
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let mut a = Reservoir::new(64);
        let mut b = Reservoir::new(64);
        for i in 0..1000u64 {
            a.offer(i, &synth_entry(i));
        }
        for i in 0..1000u64 {
            b.offer(i, &synth_entry(i));
        }
        assert!(a.len() < 64, "reservoir overflowed: {}", a.len());
        assert!(a.len() >= 16, "reservoir too aggressive: {}", a.len());
        let av: Vec<_> = a.entries().collect();
        let bv: Vec<_> = b.entries().collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn committee_trains_and_selection_is_deterministic() {
        let space = DesignSpace::paper();
        let mut res = Reservoir::new(512);
        for i in 0..200u64 {
            res.offer(i, &synth_entry(i));
        }
        let config = ActiveConfig {
            epochs: 40,
            ..ActiveConfig::default()
        };
        let committee = Committee::train(&space, &res, &config, 42)
            .unwrap()
            .expect("reservoir is large enough");
        let (a, da) = select_chunk(&committee, &space, 32, &config, 7).unwrap();
        let (b, db) = select_chunk(&committee, &space, 32, &config, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(da.to_bits(), db.to_bits());
        assert_eq!(a.len(), 32);
        for omega in &a {
            assert!(space.contains(omega), "infeasible pick {omega:?}");
        }
        // A different chunk seed must explore a different pool.
        let (c, _) = select_chunk(&committee, &space, 32, &config, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn too_small_reservoir_falls_back_to_none() {
        let space = DesignSpace::paper();
        let mut res = Reservoir::new(512);
        for i in 0..5u64 {
            res.offer(i, &synth_entry(i));
        }
        let got = Committee::train(&space, &res, &ActiveConfig::default(), 0).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn constant_eta_prefix_falls_back_to_none() {
        let space = DesignSpace::paper();
        let mut res = Reservoir::new(512);
        for i in 0..64u64 {
            let mut e = synth_entry(i);
            e.eta = [0.5, 0.5, 0.5, 0.5];
            res.offer(i, &e);
        }
        let got = Committee::train(&space, &res, &ActiveConfig::default(), 0).unwrap();
        assert!(got.is_none(), "degenerate η must not be an error here");
    }
}
