use std::fmt;

/// Error type for the surrogate pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum SurrogateError {
    /// Quasi Monte-Carlo sampling failed (should not happen for the 7-dim
    /// design space).
    Qmc(pnc_qmc::QmcError),
    /// A circuit simulation failed.
    Spice(pnc_spice::SpiceError),
    /// A curve fit failed.
    Fit(pnc_fit::FitError),
    /// An autodiff operation failed while building or training the network.
    Autodiff(pnc_autodiff::AutodiffError),
    /// The dataset was unusable (empty, or degenerate η ranges).
    BadDataset {
        /// Human-readable description.
        detail: String,
    },
    /// An η component is constant (or non-finite) over the dataset, so
    /// min–max normalization would divide by zero. Carried as its own typed
    /// variant so callers can distinguish "your design-space slice is
    /// degenerate" from other dataset problems.
    DegenerateEta {
        /// Which of the four η components (0-based).
        component: usize,
        /// The constant (or offending non-finite) value.
        value: f64,
    },
    /// A streaming-configuration knob was invalid (unknown
    /// `PNC_SURROGATE_SAMPLING` value, zero chunk size, malformed
    /// `PNC_SURROGATE_CHUNK`). Never silently defaulted — the
    /// `PNC_INFER_PRECISION` precedent.
    Config {
        /// Human-readable description naming the knob and its value.
        detail: String,
    },
    /// The on-disk dataset store rejected an operation (corruption, version
    /// mismatch, resume against a different configuration).
    Store(crate::StoreError),
    /// Model (de)serialization failed.
    Serde(serde_json::Error),
    /// File I/O failed while saving or loading a model.
    Io(std::io::Error),
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurrogateError::Qmc(e) => write!(f, "qmc sampling failed: {e}"),
            SurrogateError::Spice(e) => write!(f, "circuit simulation failed: {e}"),
            SurrogateError::Fit(e) => write!(f, "curve fit failed: {e}"),
            SurrogateError::Autodiff(e) => write!(f, "autodiff failure: {e}"),
            SurrogateError::BadDataset { detail } => write!(f, "bad dataset: {detail}"),
            SurrogateError::DegenerateEta { component, value } => write!(
                f,
                "degenerate dataset: eta component {component} is constant at {value} \
                 (min-max normalization would divide by zero)"
            ),
            SurrogateError::Config { detail } => write!(f, "bad configuration: {detail}"),
            SurrogateError::Store(e) => write!(f, "dataset store: {e}"),
            SurrogateError::Serde(e) => write!(f, "model serialization failed: {e}"),
            SurrogateError::Io(e) => write!(f, "model file i/o failed: {e}"),
        }
    }
}

impl std::error::Error for SurrogateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SurrogateError::Qmc(e) => Some(e),
            SurrogateError::Spice(e) => Some(e),
            SurrogateError::Fit(e) => Some(e),
            SurrogateError::Autodiff(e) => Some(e),
            SurrogateError::Serde(e) => Some(e),
            SurrogateError::Io(e) => Some(e),
            SurrogateError::Store(e) => Some(e),
            SurrogateError::BadDataset { .. }
            | SurrogateError::DegenerateEta { .. }
            | SurrogateError::Config { .. } => None,
        }
    }
}

impl From<crate::StoreError> for SurrogateError {
    fn from(e: crate::StoreError) -> Self {
        SurrogateError::Store(e)
    }
}

impl From<pnc_qmc::QmcError> for SurrogateError {
    fn from(e: pnc_qmc::QmcError) -> Self {
        SurrogateError::Qmc(e)
    }
}

impl From<pnc_spice::SpiceError> for SurrogateError {
    fn from(e: pnc_spice::SpiceError) -> Self {
        SurrogateError::Spice(e)
    }
}

impl From<pnc_fit::FitError> for SurrogateError {
    fn from(e: pnc_fit::FitError) -> Self {
        SurrogateError::Fit(e)
    }
}

impl From<pnc_autodiff::AutodiffError> for SurrogateError {
    fn from(e: pnc_autodiff::AutodiffError) -> Self {
        SurrogateError::Autodiff(e)
    }
}

impl From<serde_json::Error> for SurrogateError {
    fn from(e: serde_json::Error) -> Self {
        SurrogateError::Serde(e)
    }
}

impl From<std::io::Error> for SurrogateError {
    fn from(e: std::io::Error) -> Self {
        SurrogateError::Io(e)
    }
}
