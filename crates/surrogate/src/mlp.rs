use pnc_autodiff::{Graph, Parameter, Var};
use pnc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The paper's surrogate architecture: 13 weight layers with neuron counts
/// 10-9-9-8-8-7-7-6-6-6-5-5-5-4 (Sec. III-A).
pub const PAPER_LAYER_SIZES: [usize; 14] = [10, 9, 9, 8, 8, 7, 7, 6, 6, 6, 5, 5, 5, 4];

/// A fully connected regression network with tanh hidden activations and a
/// linear output layer.
///
/// The network is deliberately minimal: it exists to approximate the smooth
/// mapping ω̃ ↦ η̃ from normalized circuit parameters to normalized curve
/// parameters. It can run in three modes:
///
/// * [`Mlp::predict`] — plain `f64` forward pass (no tape), for evaluation
///   and test-time Monte-Carlo robustness sweeps;
/// * [`Mlp::forward_train`] — weights as trainable leaves, for surrogate
///   training;
/// * [`Mlp::forward_const`] — weights as constants inside a larger graph, so
///   gradients flow *through* the network to its input (how the pNN learns
///   ω, Fig. 5).
///
/// # Examples
///
/// ```
/// use pnc_surrogate::Mlp;
///
/// let mlp = Mlp::new(&[3, 4, 2], 1);
/// let y = mlp.predict(&[0.1, 0.5, 0.9]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    sizes: Vec<usize>,
    weights: Vec<Parameter>,
    biases: Vec<Parameter>,
}

impl Mlp {
    /// Creates a network with Xavier-uniform initial weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are given or any size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(sizes.len() - 1);
        let mut biases = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let weight = Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit));
            weights.push(Parameter::new(weight));
            biases.push(Parameter::new(Matrix::zeros(1, fan_out)));
        }
        Mlp {
            sizes: sizes.to_vec(),
            weights,
            biases,
        }
    }

    /// Layer sizes including input and output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        // The constructor rejects fewer than two sizes, so `sizes` is
        // non-empty; 0 is a safe degenerate answer rather than a panic.
        self.sizes.last().copied().unwrap_or(0)
    }

    /// Number of scalar parameters (weights + biases).
    pub fn num_parameters(&self) -> usize {
        self.weights.iter().map(|w| w.value().len()).sum::<usize>()
            + self.biases.iter().map(|b| b.value().len()).sum::<usize>()
    }

    /// Plain forward pass on a single input row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        let mut h = x.to_vec();
        let last = self.weights.len() - 1;
        for (layer, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let wm = w.value();
            let bm = b.value();
            let (fan_in, fan_out) = wm.shape();
            let mut out = vec![0.0; fan_out];
            for j in 0..fan_out {
                let mut acc = bm[(0, j)];
                for i in 0..fan_in {
                    acc += h[i] * wm[(i, j)];
                }
                out[j] = if layer < last { acc.tanh() } else { acc };
            }
            h = out;
        }
        h
    }

    /// Forward pass with weights registered as trainable leaves.
    ///
    /// Returns the output node plus the parallel `(parameters, leaf vars)`
    /// bookkeeping needed to apply optimizer updates: weights first, then
    /// biases, layer by layer.
    ///
    /// # Errors
    ///
    /// Returns an autodiff error if `x` has the wrong number of columns.
    pub fn forward_train(
        &self,
        g: &mut Graph,
        x: Var,
    ) -> Result<(Var, Vec<Var>), pnc_autodiff::AutodiffError> {
        let mut param_vars = Vec::with_capacity(2 * self.weights.len());
        let mut h = x;
        let last = self.weights.len() - 1;
        for (layer, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let wv = w.leaf(g);
            let bv = b.leaf(g);
            param_vars.push(wv);
            param_vars.push(bv);
            let lin = g.matmul(h, wv)?;
            let lin = g.add(lin, bv)?;
            h = if layer < last { g.tanh(lin) } else { lin };
        }
        Ok((h, param_vars))
    }

    /// Forward pass with weights registered as constants, letting gradients
    /// flow to the *input* only.
    ///
    /// # Errors
    ///
    /// Returns an autodiff error if `x` has the wrong number of columns.
    pub fn forward_const(&self, g: &mut Graph, x: Var) -> Result<Var, pnc_autodiff::AutodiffError> {
        let mut h = x;
        let last = self.weights.len() - 1;
        for (layer, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let wv = g.constant(w.value().clone());
            let bv = g.constant(b.value().clone());
            let lin = g.matmul(h, wv)?;
            let lin = g.add(lin, bv)?;
            h = if layer < last { g.tanh(lin) } else { lin };
        }
        Ok(h)
    }

    /// Mutable access to all parameters (weights then biases, layer by
    /// layer), in the same order as the vars returned by
    /// [`Mlp::forward_train`].
    pub fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        let mut out: Vec<&mut Parameter> = Vec::with_capacity(2 * self.weights.len());
        // Interleave to match forward_train's var order.
        for (w, b) in self.weights.iter_mut().zip(self.biases.iter_mut()) {
            out.push(w);
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_autodiff::{Adam, Optimizer};

    #[test]
    fn paper_sizes_are_thirteen_layers() {
        assert_eq!(PAPER_LAYER_SIZES.len(), 14);
        let mlp = Mlp::new(&PAPER_LAYER_SIZES, 0);
        assert_eq!(mlp.sizes().len(), 14);
        assert_eq!(mlp.input_dim(), 10);
        assert_eq!(mlp.output_dim(), 4);
        assert!(mlp.num_parameters() > 500);
    }

    #[test]
    fn predict_matches_graph_forward() {
        let mlp = Mlp::new(&[4, 5, 3], 42);
        let x = [0.1, -0.3, 0.7, 0.2];
        let plain = mlp.predict(&x);

        let mut g = Graph::new();
        let node = g.constant(Matrix::row_vector(&x));
        let out = mlp.forward_const(&mut g, node).unwrap();
        for (k, &p) in plain.iter().enumerate() {
            assert!((g.value(out)[(0, k)] - p).abs() < 1e-12);
        }

        let mut g = Graph::new();
        let node = g.constant(Matrix::row_vector(&x));
        let (out, _) = mlp.forward_train(&mut g, node).unwrap();
        for (k, &p) in plain.iter().enumerate() {
            assert!((g.value(out)[(0, k)] - p).abs() < 1e-12);
        }
    }

    #[test]
    fn initialization_is_seeded() {
        let a = Mlp::new(&[3, 3, 2], 7);
        let b = Mlp::new(&[3, 3, 2], 7);
        let c = Mlp::new(&[3, 3, 2], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gradients_flow_through_const_network_to_input() {
        let mlp = Mlp::new(&[3, 4, 2], 3);
        let report = pnc_autodiff::gradcheck::check_gradients(
            &[Matrix::row_vector(&[0.2, 0.5, -0.4])],
            1e-6,
            |g, vars| {
                let y = mlp.forward_const(g, vars[0]).unwrap();
                g.sum(y)
            },
        );
        assert!(report.max_abs_error < 1e-6, "{report:?}");
    }

    #[test]
    fn can_learn_a_linear_map() {
        // Small regression sanity check: y = [x0 + x1, x0 − x1].
        let mut mlp = Mlp::new(&[2, 6, 2], 5);
        let xs = Matrix::from_fn(64, 2, |i, j| {
            let t = i as f64 / 63.0 * 2.0 - 1.0;
            if j == 0 {
                t
            } else {
                (t * 7.0).sin() * 0.5
            }
        });
        let ys = Matrix::from_fn(64, 2, |i, j| {
            let a = xs[(i, 0)];
            let b = xs[(i, 1)];
            if j == 0 {
                a + b
            } else {
                a - b
            }
        });

        let mut opt = Adam::new(0.02);
        let mut final_loss = f64::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let t = g.constant(ys.clone());
            let (pred, vars) = mlp.forward_train(&mut g, x).unwrap();
            let diff = g.sub(pred, t).unwrap();
            let sq = g.powi(diff, 2);
            let loss = g.mean(sq);
            final_loss = g.value(loss)[(0, 0)];
            let grads = g.backward(loss).unwrap();
            let mut params = mlp.parameters_mut();
            opt.step(&mut params, &vars, &grads);
        }
        assert!(final_loss < 1e-3, "final loss {final_loss}");
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let mlp = Mlp::new(&[4, 5, 3], 11);
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.3, 0.1, -0.2, 0.9];
        // JSON float writing is shortest-repr (±1 ULP here), so compare with
        // a tight tolerance rather than bitwise.
        for (a, b) in mlp.predict(&x).iter().zip(back.predict(&x)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn predict_checks_input_dim() {
        Mlp::new(&[3, 2], 0).predict(&[1.0]);
    }
}
