//! Streaming, resumable dataset builder — bounded memory at any build size.
//!
//! The batch builder ([`crate::build_dataset_opts`]) materializes every
//! sample in RAM; at ROADMAP item 2's production scale (10⁶ points) that is
//! neither necessary nor survivable. [`StreamBuilder`] does the same work in
//! fixed-size chunks:
//!
//! * each chunk's points are drawn, characterized in parallel
//!   ([`ParallelConfig::ordered_par_map`], same per-point physics via the
//!   shared `characterize_point`), and committed to the append-only
//!   [`DatasetStore`] before the next chunk starts;
//! * peak memory is `O(chunk_points)`, independent of the total build size
//!   (the `surrogate_stream` bench demonstrates flat RSS from 10k to 100k
//!   points);
//! * in [`SamplingMode::Uniform`] the point sequence is the *same* Sobol'
//!   rejection stream the batch oracle draws ([`DesignSampler`]), so a
//!   streamed dataset is **bit-identical** to the batch build at every chunk
//!   size and thread count;
//! * a killed build resumes from the last committed chunk
//!   ([`StreamBuilder::resume`]) and finishes byte-identical to an
//!   uninterrupted run — sampler state is replayed, not persisted;
//! * in [`SamplingMode::Active`] each chunk's points are chosen by
//!   committee disagreement ([`crate::active`]) so the SPICE budget
//!   concentrates where the surrogate is worst.
//!
//! The full contract (determinism, store format, resume semantics) is
//! DESIGN.md §17.

use crate::active::{self, ActiveConfig, Committee, Reservoir};
use crate::dataset::characterize_point;
use crate::store::{DatasetStore, ResumeReport, SamplingMode, StoreMeta, StoreRecord};
use crate::{
    CircuitDataset, DesignSampler, DesignSpace, EtaBounds, EtaBoundsAccumulator, SurrogateError,
    OMEGA_DIM,
};
use pnc_linalg::ParallelConfig;
use pnc_obs::{Counter, Histogram, Span};
use pnc_spice::sweep::linspace;
use pnc_spice::DcSolver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

// Observability: streaming-build progress and active-sampling diagnostics.
// Catalogued in docs/METRICS.md.
static OBS_CHUNKS: Counter = Counter::new("surrogate.stream.chunks");
static OBS_POINTS: Counter = Counter::new("surrogate.stream.points");
static OBS_RESUMED_POINTS: Counter = Counter::new("surrogate.stream.resumed_points");
static OBS_DISCARDED_BYTES: Counter = Counter::new("surrogate.stream.discarded_bytes");
static OBS_ACTIVE_CANDIDATES: Counter = Counter::new("surrogate.stream.active_candidates");
static OBS_CHUNK_SECONDS: Histogram = Histogram::new("surrogate.stream.chunk_seconds");
static OBS_DISAGREEMENT: Histogram = Histogram::new("surrogate.stream.disagreement");

fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_CHUNKS.register();
        OBS_POINTS.register();
        OBS_RESUMED_POINTS.register();
        OBS_DISCARDED_BYTES.register();
        OBS_ACTIVE_CANDIDATES.register();
        OBS_CHUNK_SECONDS.register();
        OBS_DISAGREEMENT.register();
    });
}

/// Configuration of a streaming build. The fields that shape the dataset
/// (`total_points`, `chunk_points`, `sweep_points`, `sampling`, `seed`,
/// `max_failure_fraction`) are recorded in the store header and must match
/// on resume; `parallel` and `active` only shape *how* the same points are
/// computed.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Target number of design points (the paper's batch build uses 10 000;
    /// ROADMAP item 2 aims at 10⁶).
    pub total_points: usize,
    /// Points characterized and committed per chunk — the memory bound.
    pub chunk_points: usize,
    /// `V_in` grid points per transfer-curve sweep.
    pub sweep_points: usize,
    /// How design points are chosen.
    pub sampling: SamplingMode,
    /// Base seed of the deterministic per-chunk seed schedule (active mode;
    /// uniform mode's Sobol' stream is seed-free like the batch oracle).
    pub seed: u64,
    /// Abort threshold on the failed-point fraction (same default 5 % as the
    /// batch builder).
    pub max_failure_fraction: f64,
    /// Per-chunk thread configuration.
    pub parallel: ParallelConfig,
    /// Committee knobs for [`SamplingMode::Active`].
    pub active: ActiveConfig,
}

impl StreamConfig {
    /// Environment variable overriding [`StreamConfig::chunk_points`].
    pub const CHUNK_ENV_VAR: &'static str = "PNC_SURROGATE_CHUNK";

    /// A default configuration: 1024-point chunks, uniform sampling, the
    /// batch builder's 5 % failure threshold, automatic thread count.
    pub fn new(total_points: usize, sweep_points: usize) -> Self {
        StreamConfig {
            total_points,
            chunk_points: 1024,
            sweep_points,
            sampling: SamplingMode::Uniform,
            seed: 0,
            max_failure_fraction: 0.05,
            parallel: ParallelConfig::automatic(),
            active: ActiveConfig::default(),
        }
    }

    /// Parses a `PNC_SURROGATE_CHUNK` value.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::Config`] unless the value is a positive integer.
    pub fn parse_chunk(raw: &str) -> Result<usize, SurrogateError> {
        match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(SurrogateError::Config {
                detail: format!(
                    "{}={raw:?} is not a positive chunk size",
                    Self::CHUNK_ENV_VAR
                ),
            }),
        }
    }

    /// Applies the environment overrides: `PNC_SURROGATE_CHUNK` for the
    /// chunk size and `PNC_SURROGATE_SAMPLING` for the sampling mode.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::Config`] on a malformed value — never a silent
    /// fallback.
    pub fn with_env_overrides(mut self) -> Result<Self, SurrogateError> {
        if let Ok(raw) = std::env::var(Self::CHUNK_ENV_VAR) {
            if !raw.trim().is_empty() {
                self.chunk_points = Self::parse_chunk(&raw)?;
            }
        }
        self.sampling = SamplingMode::from_env()?;
        Ok(self)
    }

    fn meta(&self, space: &DesignSpace) -> StoreMeta {
        StoreMeta {
            total_points: self.total_points as u64,
            chunk_points: self.chunk_points as u64,
            sweep_points: self.sweep_points as u32,
            sampling: self.sampling,
            seed: self.seed,
            max_failure_fraction: self.max_failure_fraction,
            space: space.clone(),
        }
    }

    fn validate(&self) -> Result<(), SurrogateError> {
        if self.total_points == 0 {
            return Err(SurrogateError::Config {
                detail: "total_points must be positive".into(),
            });
        }
        if self.chunk_points == 0 {
            return Err(SurrogateError::Config {
                detail: "chunk_points must be positive".into(),
            });
        }
        Ok(())
    }
}

/// What one [`StreamBuilder::next_chunk`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSummary {
    /// Index of the committed chunk.
    pub chunk_index: u64,
    /// Design points attempted in this chunk.
    pub points: usize,
    /// Points characterized successfully.
    pub entries: usize,
    /// Points that failed (recorded, not dropped).
    pub failures: usize,
}

/// Summary of a completed streaming build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamReport {
    /// Design points attempted (equals the configured total).
    pub total_points: usize,
    /// Successfully characterized entries.
    pub entries: usize,
    /// Recorded failures.
    pub failures: usize,
    /// Chunk frames committed.
    pub chunks: u64,
    /// Points that were already committed when this builder started
    /// (non-zero only after a resume).
    pub resumed_points: u64,
    /// Torn-tail bytes discarded at resume time.
    pub discarded_bytes: u64,
    /// Streaming η bounds over all entries (bit-identical to the batch
    /// [`EtaBounds::from_entries`] — the refit-free normalization contract).
    pub eta_bounds: EtaBounds,
}

/// The streaming dataset builder. See the module docs for the contract.
pub struct StreamBuilder<'a> {
    config: StreamConfig,
    space: DesignSpace,
    store: DatasetStore,
    sampler: DesignSampler,
    grid: Vec<f64>,
    reservoir: Reservoir,
    acc: EtaBoundsAccumulator,
    failures: u64,
    resumed: ResumeReport,
    solver_factory: Option<&'a (dyn Fn(usize) -> DcSolver + Sync)>,
}

impl<'a> StreamBuilder<'a> {
    /// Starts a fresh build, creating (truncating) the store at `path`.
    ///
    /// # Errors
    ///
    /// Config validation and store-creation failures.
    pub fn create(path: &Path, config: &StreamConfig) -> Result<Self, SurrogateError> {
        config.validate()?;
        obs_register();
        let space = DesignSpace::paper();
        let store = DatasetStore::create(path, &config.meta(&space))?;
        Self::assemble(
            *config,
            space,
            store,
            ResumeReport {
                committed_chunks: 0,
                committed_records: 0,
                discarded_bytes: 0,
            },
        )
    }

    /// Resumes a killed build from `path`: validates the committed prefix
    /// (discarding a torn tail), checks that `config` matches the store
    /// header, replays the committed records to rebuild the in-memory state
    /// (η accumulator, failure count, active-sampling reservoir, sampler
    /// position), and is then ready to continue **bit-identically** to an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Typed store errors for corruption/mismatch; config validation.
    pub fn resume(
        path: &Path,
        config: &StreamConfig,
    ) -> Result<(Self, ResumeReport), SurrogateError> {
        config.validate()?;
        obs_register();
        let space = DesignSpace::paper();
        let (store, report) = DatasetStore::open_resumable(path)?;
        store
            .check_meta(&config.meta(&space))
            .map_err(SurrogateError::from)?;
        OBS_RESUMED_POINTS.add(report.committed_records);
        OBS_DISCARDED_BYTES.add(report.discarded_bytes);
        let builder = Self::assemble(*config, space, store, report)?;
        Ok((builder, report))
    }

    /// [`StreamBuilder::resume`] when the store exists, otherwise
    /// [`StreamBuilder::create`].
    ///
    /// # Errors
    ///
    /// Same contracts as the two constructors.
    pub fn open_or_create(
        path: &Path,
        config: &StreamConfig,
    ) -> Result<(Self, ResumeReport), SurrogateError> {
        if path.exists() {
            Self::resume(path, config)
        } else {
            let builder = Self::create(path, config)?;
            Ok((
                builder,
                ResumeReport {
                    committed_chunks: 0,
                    committed_records: 0,
                    discarded_bytes: 0,
                },
            ))
        }
    }

    /// Installs a per-sample DC solver override (fault injection in tests,
    /// custom recovery policies), keyed on the scheduling-invariant global
    /// sample index — same mechanism as
    /// [`BuildOptions::solver_factory`](crate::BuildOptions::solver_factory).
    pub fn with_solver_factory(mut self, factory: &'a (dyn Fn(usize) -> DcSolver + Sync)) -> Self {
        self.solver_factory = Some(factory);
        self
    }

    fn assemble(
        config: StreamConfig,
        space: DesignSpace,
        store: DatasetStore,
        resumed: ResumeReport,
    ) -> Result<Self, SurrogateError> {
        let mut sampler = DesignSampler::new(&space)?;
        let mut acc = EtaBoundsAccumulator::new();
        let mut reservoir = Reservoir::new(config.active.reservoir);
        let mut failures = 0u64;
        // Replay the committed prefix chunk by chunk (bounded memory): the
        // streaming state is a pure fold over the records, so the rebuilt
        // state is exactly what the uninterrupted build had here.
        for chunk in 0..store.committed_chunks() {
            for record in store.read_chunk(chunk)? {
                match record {
                    StoreRecord::Entry { index, entry } => {
                        acc.observe(&entry.eta)?;
                        reservoir.offer(index, &entry);
                    }
                    StoreRecord::Failure(_) => failures += 1,
                }
            }
        }
        if config.sampling == SamplingMode::Uniform && store.committed_records() > 0 {
            // Fast-forward the Sobol' stream past the committed points.
            sampler.skip(store.committed_records() as usize)?;
        }
        let grid = linspace(0.0, pnc_spice::circuits::VDD, config.sweep_points.max(5));
        Ok(StreamBuilder {
            config,
            space,
            store,
            sampler,
            grid,
            reservoir,
            acc,
            failures,
            resumed,
            solver_factory: None,
        })
    }

    /// The underlying store (committed chunks/records, path, header).
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Whether the build has reached its configured total.
    pub fn is_complete(&self) -> bool {
        self.store.committed_records() >= self.config.total_points as u64
    }

    /// The deterministic per-chunk seed schedule (active-mode candidate
    /// draws and committee seeds).
    fn chunk_seed(&self, chunk_index: u64) -> u64 {
        active::splitmix64(
            self.config
                .seed
                .wrapping_add((chunk_index.wrapping_add(1)).wrapping_mul(0x2545_f491_4f6c_dd1d)),
        )
    }

    /// Draws, characterizes, and commits the next chunk. Returns `None`
    /// when the build is already complete.
    ///
    /// # Errors
    ///
    /// Sampling/store failures, a non-finite fitted η, or the failure
    /// fraction crossing [`StreamConfig::max_failure_fraction`] (the
    /// streamed equivalent of the batch builder's final threshold — checked
    /// incrementally so a doomed 10⁶-point run aborts early).
    pub fn next_chunk(&mut self) -> Result<Option<ChunkSummary>, SurrogateError> {
        let done = self.store.committed_records();
        let total = self.config.total_points as u64;
        if done >= total {
            return Ok(None);
        }
        let span = Span::new(&OBS_CHUNK_SECONDS);
        let n = ((total - done) as usize).min(self.config.chunk_points);
        let chunk_index = self.store.committed_chunks();

        let omegas = match self.config.sampling {
            SamplingMode::Uniform => self.sampler.next_batch(n)?,
            SamplingMode::Active => {
                let chunk_seed = self.chunk_seed(chunk_index);
                let committee = Committee::train(
                    &self.space,
                    &self.reservoir,
                    &self.config.active,
                    active::splitmix64(chunk_seed),
                )?;
                match committee {
                    Some(committee) => {
                        let (points, mean_disagreement) = active::select_chunk(
                            &committee,
                            &self.space,
                            n,
                            &self.config.active,
                            chunk_seed,
                        )?;
                        OBS_ACTIVE_CANDIDATES
                            .add((n * self.config.active.candidate_factor.max(2)) as u64);
                        OBS_DISAGREEMENT.observe(mean_disagreement);
                        points
                    }
                    // Too little data for a committee yet: uniform draws
                    // from the same deterministic per-chunk stream.
                    None => {
                        let mut rng = StdRng::seed_from_u64(chunk_seed);
                        active::draw_uniform(&self.space, &mut rng, n)?
                    }
                }
            }
        };

        let indexed: Vec<(usize, [f64; OMEGA_DIM])> = omegas
            .into_iter()
            .enumerate()
            .map(|(i, omega)| (done as usize + i, omega))
            .collect();
        let solver_factory = self.solver_factory;
        let grid = &self.grid;
        let results = self
            .config
            .parallel
            .ordered_par_map(&indexed, |(index, omega)| {
                characterize_point(*index, omega, grid, solver_factory)
            });

        let mut records = Vec::with_capacity(n);
        let mut entries = 0usize;
        let mut chunk_failures = 0usize;
        for ((index, _), result) in indexed.iter().zip(results) {
            match result {
                Ok(entry) => {
                    self.acc.observe(&entry.eta)?;
                    self.reservoir.offer(*index as u64, &entry);
                    records.push(StoreRecord::Entry {
                        index: *index as u64,
                        entry,
                    });
                    entries += 1;
                }
                Err(failure) => {
                    self.failures += 1;
                    chunk_failures += 1;
                    records.push(StoreRecord::Failure(failure));
                }
            }
        }
        self.store.append_chunk(&records)?;
        OBS_CHUNKS.increment();
        OBS_POINTS.add(n as u64);
        drop(span);

        if self.failures as f64 > self.config.max_failure_fraction * total as f64 {
            return Err(SurrogateError::BadDataset {
                detail: format!(
                    "{} of {} attempted circuit characterizations failed \
                     (threshold {} over {total} points); committed prefix kept at {}",
                    self.failures,
                    self.store.committed_records(),
                    self.config.max_failure_fraction,
                    self.store.path().display(),
                ),
            });
        }
        Ok(Some(ChunkSummary {
            chunk_index,
            points: n,
            entries,
            failures: chunk_failures,
        }))
    }

    /// Runs [`next_chunk`](StreamBuilder::next_chunk) to completion and
    /// summarizes.
    ///
    /// # Errors
    ///
    /// Chunk failures, plus [`SurrogateError::DegenerateEta`] /
    /// [`SurrogateError::BadDataset`] if the finished dataset cannot be
    /// normalized — the same end-state contract as the batch builder.
    pub fn run_to_completion(&mut self) -> Result<StreamReport, SurrogateError> {
        while self.next_chunk()?.is_some() {}
        self.report()
    }

    /// Summarizes a completed build.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::Config`] if called before completion; η-bounds
    /// validation errors as in [`EtaBounds::from_entries`].
    pub fn report(&self) -> Result<StreamReport, SurrogateError> {
        if !self.is_complete() {
            return Err(SurrogateError::Config {
                detail: format!(
                    "build is not complete: {} of {} points committed",
                    self.store.committed_records(),
                    self.config.total_points
                ),
            });
        }
        let eta_bounds = self.acc.finish()?;
        Ok(StreamReport {
            total_points: self.config.total_points,
            entries: self.acc.count(),
            failures: self.failures as usize,
            chunks: self.store.committed_chunks(),
            resumed_points: self.resumed.committed_records,
            discarded_bytes: self.resumed.discarded_bytes,
            eta_bounds,
        })
    }
}

/// Materializes a completed store into the in-memory [`CircuitDataset`] the
/// batch builder returns — the bridge used by the batch-equivalence tests
/// and by consumers whose dataset still fits in RAM. (At production scale,
/// train from the store directly with
/// [`train_surrogate_streaming`](crate::train_surrogate_streaming).)
///
/// # Errors
///
/// Store read/validation failures; η-bounds validation as in
/// [`EtaBounds::from_entries`].
pub fn load_circuit_dataset(store: &DatasetStore) -> Result<CircuitDataset, SurrogateError> {
    let (entries, failures) = store.load_all()?;
    let eta_bounds = EtaBounds::from_entries(&entries)?;
    Ok(CircuitDataset {
        space: store.meta().space.clone(),
        entries,
        eta_bounds,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset_opts, BuildOptions, DatasetConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pnc_stream_{name}.pncds"))
    }

    fn small_config(total: usize, chunk: usize) -> StreamConfig {
        StreamConfig {
            chunk_points: chunk,
            parallel: ParallelConfig::serial(),
            ..StreamConfig::new(total, 21)
        }
    }

    fn batch_oracle(samples: usize) -> CircuitDataset {
        build_dataset_opts(
            &DatasetConfig {
                samples,
                sweep_points: 21,
            },
            &BuildOptions {
                parallel: ParallelConfig::serial(),
                ..BuildOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn streamed_build_is_bit_identical_to_batch_oracle() {
        let batch = batch_oracle(40);
        for chunk in [7usize, 16, 40, 64] {
            for threads in [1usize, 2, 8] {
                let path = tmp(&format!("equiv_{chunk}_{threads}"));
                let config = StreamConfig {
                    parallel: ParallelConfig::with_threads(threads),
                    ..small_config(40, chunk)
                };
                let mut builder = StreamBuilder::create(&path, &config).unwrap();
                let report = builder.run_to_completion().unwrap();
                let streamed = load_circuit_dataset(builder.store()).unwrap();
                assert_eq!(
                    batch, streamed,
                    "chunk={chunk} threads={threads} diverged from the batch oracle"
                );
                // Streaming bounds must equal the batch bounds bitwise.
                for k in 0..4 {
                    assert_eq!(
                        report.eta_bounds.lo[k].to_bits(),
                        batch.eta_bounds.lo[k].to_bits()
                    );
                    assert_eq!(
                        report.eta_bounds.hi[k].to_bits(),
                        batch.eta_bounds.hi[k].to_bits()
                    );
                }
                std::fs::remove_file(&path).ok();
            }
        }
    }

    fn faulting_factory(bad: &'static [usize]) -> impl Fn(usize) -> DcSolver + Sync {
        move |index| {
            let mut solver = DcSolver::new();
            if bad.contains(&index) {
                solver.fault_injection =
                    Some(pnc_spice::FaultInjection::unrecoverable_at(vec![0.5]));
            }
            solver
        }
    }

    #[test]
    fn streamed_failures_match_batch_oracle_across_chunkings() {
        const BAD: &[usize] = &[3, 17, 22];
        let factory = faulting_factory(BAD);
        let batch = build_dataset_opts(
            &DatasetConfig {
                samples: 40,
                sweep_points: 21,
            },
            &BuildOptions {
                parallel: ParallelConfig::serial(),
                max_failure_fraction: Some(0.2),
                solver_factory: Some(&factory),
            },
        )
        .unwrap();
        for chunk in [9usize, 40] {
            let path = tmp(&format!("faults_{chunk}"));
            let config = StreamConfig {
                max_failure_fraction: 0.2,
                ..small_config(40, chunk)
            };
            let mut builder = StreamBuilder::create(&path, &config)
                .unwrap()
                .with_solver_factory(&factory);
            builder.run_to_completion().unwrap();
            let streamed = load_circuit_dataset(builder.store()).unwrap();
            assert_eq!(batch, streamed, "chunk={chunk}");
            assert_eq!(streamed.failures.len(), BAD.len());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn resume_from_chunk_boundary_is_byte_identical() {
        let config = small_config(36, 9);
        // Uninterrupted reference.
        let ref_path = tmp("resume_ref");
        let mut reference = StreamBuilder::create(&ref_path, &config).unwrap();
        reference.run_to_completion().unwrap();
        let want = std::fs::read(&ref_path).unwrap();

        // Killed at a chunk boundary: run two chunks, drop the builder.
        let path = tmp("resume_boundary");
        let mut builder = StreamBuilder::create(&path, &config).unwrap();
        builder.next_chunk().unwrap().unwrap();
        builder.next_chunk().unwrap().unwrap();
        drop(builder);

        let (mut resumed, report) = StreamBuilder::resume(&path, &config).unwrap();
        assert_eq!(report.committed_chunks, 2);
        assert_eq!(report.committed_records, 18);
        assert_eq!(report.discarded_bytes, 0);
        let stream_report = resumed.run_to_completion().unwrap();
        assert_eq!(stream_report.resumed_points, 18);
        let got = std::fs::read(&path).unwrap();
        assert_eq!(want, got, "resumed store differs from uninterrupted build");
        std::fs::remove_file(&ref_path).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_from_mid_chunk_truncation_is_byte_identical() {
        let config = small_config(36, 9);
        let ref_path = tmp("resume_midref");
        let mut reference = StreamBuilder::create(&ref_path, &config).unwrap();
        reference.run_to_completion().unwrap();
        let want = std::fs::read(&ref_path).unwrap();

        // A kill mid-write leaves a prefix of the uninterrupted byte
        // stream: simulate it by truncating inside the third frame.
        let path = tmp("resume_mid");
        let cut = want.len() - (want.len() / 3);
        std::fs::write(&path, &want[..cut]).unwrap();

        let (mut resumed, report) = StreamBuilder::resume(&path, &config).unwrap();
        assert!(report.discarded_bytes > 0, "expected a torn tail");
        assert!(report.committed_records < 36);
        assert_eq!(report.committed_records % 9, 0, "whole chunks only");
        resumed.run_to_completion().unwrap();
        let got = std::fs::read(&path).unwrap();
        assert_eq!(
            want, got,
            "recovered store differs from uninterrupted build"
        );
        std::fs::remove_file(&ref_path).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let config = small_config(36, 9);
        let path = tmp("resume_mismatch");
        let mut builder = StreamBuilder::create(&path, &config).unwrap();
        builder.next_chunk().unwrap();
        drop(builder);
        let other = StreamConfig { seed: 99, ..config };
        let Err(err) = StreamBuilder::resume(&path, &other) else {
            panic!("resume with a mismatched config must fail");
        };
        assert!(
            matches!(
                err,
                SurrogateError::Store(crate::StoreError::MetaMismatch { .. })
            ),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn active_mode_is_deterministic_and_complete() {
        let run = |path: &Path| {
            let config = StreamConfig {
                sampling: SamplingMode::Active,
                seed: 11,
                active: ActiveConfig {
                    epochs: 30,
                    reservoir: 256,
                    ..ActiveConfig::default()
                },
                ..small_config(48, 12)
            };
            let mut builder = StreamBuilder::create(path, &config).unwrap();
            builder.run_to_completion().unwrap()
        };
        let a_path = tmp("active_a");
        let b_path = tmp("active_b");
        let ra = run(&a_path);
        let rb = run(&b_path);
        assert_eq!(ra, rb);
        assert_eq!(ra.entries + ra.failures, 48);
        let a = std::fs::read(&a_path).unwrap();
        let b = std::fs::read(&b_path).unwrap();
        assert_eq!(
            a, b,
            "active builds must be deterministic under a fixed seed"
        );
        std::fs::remove_file(&a_path).ok();
        std::fs::remove_file(&b_path).ok();
    }

    #[test]
    fn active_mode_resume_is_byte_identical() {
        let config = StreamConfig {
            sampling: SamplingMode::Active,
            seed: 5,
            active: ActiveConfig {
                epochs: 30,
                reservoir: 256,
                ..ActiveConfig::default()
            },
            ..small_config(48, 12)
        };
        let ref_path = tmp("active_ref");
        let mut reference = StreamBuilder::create(&ref_path, &config).unwrap();
        reference.run_to_completion().unwrap();
        let want = std::fs::read(&ref_path).unwrap();

        let path = tmp("active_resume");
        let mut builder = StreamBuilder::create(&path, &config).unwrap();
        builder.next_chunk().unwrap().unwrap();
        builder.next_chunk().unwrap().unwrap();
        drop(builder);
        let (mut resumed, _) = StreamBuilder::resume(&path, &config).unwrap();
        resumed.run_to_completion().unwrap();
        let got = std::fs::read(&path).unwrap();
        assert_eq!(
            want, got,
            "active resume must replay the same committee choices"
        );
        std::fs::remove_file(&ref_path).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failure_threshold_aborts_but_keeps_committed_prefix() {
        const BAD: &[usize] = &[0, 1, 2, 3, 4];
        let factory = faulting_factory(BAD);
        let path = tmp("threshold");
        let config = small_config(20, 5);
        let mut builder = StreamBuilder::create(&path, &config)
            .unwrap()
            .with_solver_factory(&factory);
        let err = builder.run_to_completion().unwrap_err();
        assert!(matches!(err, SurrogateError::BadDataset { .. }), "{err:?}");
        assert!(err.to_string().contains("committed prefix"), "{err}");
        // The committed chunk survives for post-mortem.
        let store = DatasetStore::open_readonly(&path).unwrap();
        assert!(store.committed_records() >= 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_env_parsing_is_strict() {
        assert_eq!(StreamConfig::parse_chunk("512").unwrap(), 512);
        assert_eq!(StreamConfig::parse_chunk(" 64 ").unwrap(), 64);
        for bad in ["0", "-3", "many", "1.5", ""] {
            let err = StreamConfig::parse_chunk(bad).unwrap_err();
            assert!(
                matches!(err, SurrogateError::Config { .. }),
                "{bad:?} → {err:?}"
            );
        }
    }

    #[test]
    fn run_summaries_add_up() {
        let path = tmp("summaries");
        let config = small_config(22, 8);
        let mut builder = StreamBuilder::create(&path, &config).unwrap();
        let mut points = 0;
        let mut chunks = 0;
        while let Some(summary) = builder.next_chunk().unwrap() {
            assert_eq!(summary.points, summary.entries + summary.failures);
            points += summary.points;
            chunks += 1;
        }
        assert_eq!(points, 22);
        assert_eq!(chunks, 3, "22 points in chunks of 8 → 8+8+6");
        let report = builder.report().unwrap();
        assert_eq!(report.entries + report.failures, 22);
        assert_eq!(report.chunks, 3);
        std::fs::remove_file(&path).ok();
    }
}
