use crate::{DesignSpace, SurrogateError, OMEGA_DIM};
use pnc_fit::fit_ptanh;
use pnc_linalg::ParallelConfig;
use pnc_obs::{Counter, FieldValue, Histogram, Span};
use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit};
use pnc_spice::sweep::linspace;
use pnc_spice::DcSolver;
use serde::{Deserialize, Serialize};

// Observability: dataset-build throughput and per-stage failure tallies.
// Catalogued in docs/METRICS.md.
static OBS_POINTS: Counter = Counter::new("surrogate.dataset.points");
static OBS_ENTRIES: Counter = Counter::new("surrogate.dataset.entries");
static OBS_FAIL_BUILD: Counter = Counter::new("surrogate.dataset.failures.build");
static OBS_FAIL_SWEEP: Counter = Counter::new("surrogate.dataset.failures.sweep");
static OBS_FAIL_FIT: Counter = Counter::new("surrogate.dataset.failures.fit");
static OBS_FIT_RMSE: Histogram = Histogram::new("surrogate.dataset.fit_rmse");
static OBS_BUILD_SECONDS: Histogram = Histogram::new("surrogate.dataset.build_seconds");

fn obs_register() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        OBS_POINTS.register();
        OBS_ENTRIES.register();
        OBS_FAIL_BUILD.register();
        OBS_FAIL_SWEEP.register();
        OBS_FAIL_FIT.register();
        OBS_FIT_RMSE.register();
        OBS_BUILD_SECONDS.register();
    });
}

/// The pipeline stage at which a design point failed to characterize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureStage {
    /// Netlist construction rejected the parameters.
    Build,
    /// A DC sweep point did not converge (even after recovery).
    Sweep,
    /// The ptanh curve fit failed.
    Fit,
}

/// One failed design point: which ω, at which stage, and why.
///
/// The builder records these instead of silently dropping the point, so a
/// dataset consumer can audit exactly what was excluded — and a corrupted
/// solver or degenerate design-space region shows up as data rather than as
/// a mysteriously smaller dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Index of the design point in the QMC sample sequence.
    pub index: usize,
    /// The physical parameters ω of the failed point.
    pub omega: [f64; OMEGA_DIM],
    /// The stage that failed.
    pub stage: FailureStage,
    /// Human-readable cause (the underlying error's message).
    pub cause: String,
}

/// Per-stage failure counts of a dataset build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureTally {
    /// Points rejected at netlist construction.
    pub build: usize,
    /// Points lost to non-convergent sweeps.
    pub sweep: usize,
    /// Points whose curve fit failed.
    pub fit: usize,
}

impl FailureTally {
    /// Total failed points across all stages.
    pub fn total(&self) -> usize {
        self.build + self.sweep + self.fit
    }
}

/// One characterized circuit: physical parameters and fitted curve
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Physical design parameters ω (SI units).
    pub omega: [f64; OMEGA_DIM],
    /// Fitted auxiliary parameters η of Eq. 2.
    pub eta: [f64; 4],
    /// Root-mean-square error of the ptanh fit, in volts.
    pub fit_rmse: f64,
}

/// Min–max bounds of the four η components over a dataset, used to
/// normalize the network's regression targets (and saved with the model for
/// denormalization, as Sec. III-A prescribes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtaBounds {
    /// Per-component minimum of η.
    pub lo: [f64; 4],
    /// Per-component maximum of η.
    pub hi: [f64; 4],
}

impl EtaBounds {
    /// Computes bounds over a set of entries.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::BadDataset`] if `entries` is empty or an η
    /// value is non-finite, and the typed
    /// [`SurrogateError::DegenerateEta`] if some η component is constant
    /// (which would turn [`EtaBounds::normalize`] into a divide-by-zero).
    pub fn from_entries(entries: &[DatasetEntry]) -> Result<Self, SurrogateError> {
        let mut acc = EtaBoundsAccumulator::new();
        for e in entries {
            acc.observe(&e.eta)?;
        }
        acc.finish()
    }

    /// Normalizes η to `[0, 1]^4`.
    pub fn normalize(&self, eta: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for k in 0..4 {
            out[k] = (eta[k] - self.lo[k]) / (self.hi[k] - self.lo[k]);
        }
        out
    }

    /// Inverts [`EtaBounds::normalize`].
    pub fn denormalize(&self, eta_norm: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for k in 0..4 {
            out[k] = self.lo[k] + eta_norm[k] * (self.hi[k] - self.lo[k]);
        }
        out
    }
}

/// Online min/max accumulator behind [`EtaBounds`], for streaming builds
/// that never hold the full dataset: observe each entry's η as it lands,
/// then [`finish`](EtaBoundsAccumulator::finish) into validated bounds.
///
/// Min/max are order-independent extrema, so the accumulated bounds are
/// **bit-identical** to [`EtaBounds::from_entries`] over the same entries in
/// any order — the refit-free normalization contract of the streaming
/// pipeline (DESIGN.md §17): no second pass over the data is ever needed to
/// normalize targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaBoundsAccumulator {
    lo: [f64; 4],
    hi: [f64; 4],
    count: usize,
}

impl Default for EtaBoundsAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl EtaBoundsAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        EtaBoundsAccumulator {
            lo: [f64::INFINITY; 4],
            hi: [f64::NEG_INFINITY; 4],
            count: 0,
        }
    }

    /// Entries observed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Folds one η observation into the running extrema.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::BadDataset`] if a component is non-finite —
    /// a NaN would silently pass through `min`/`max` and poison
    /// normalization much later, so it is rejected at the door.
    pub fn observe(&mut self, eta: &[f64; 4]) -> Result<(), SurrogateError> {
        for (k, &v) in eta.iter().enumerate() {
            if !v.is_finite() {
                return Err(SurrogateError::BadDataset {
                    detail: format!(
                        "eta component {k} is non-finite ({v}) at entry {}",
                        self.count
                    ),
                });
            }
            self.lo[k] = self.lo[k].min(v);
            self.hi[k] = self.hi[k].max(v);
        }
        self.count += 1;
        Ok(())
    }

    /// Validates and returns the accumulated bounds.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::BadDataset`] when no entries were observed
    /// and the typed [`SurrogateError::DegenerateEta`] when a component
    /// never varied (normalizing by a zero range would yield NaN).
    pub fn finish(&self) -> Result<EtaBounds, SurrogateError> {
        if self.count == 0 {
            return Err(SurrogateError::BadDataset {
                detail: "no entries".into(),
            });
        }
        for k in 0..4 {
            if self.hi[k] <= self.lo[k] {
                return Err(SurrogateError::DegenerateEta {
                    component: k,
                    value: self.lo[k],
                });
            }
        }
        Ok(EtaBounds {
            lo: self.lo,
            hi: self.hi,
        })
    }
}

/// Configuration of the dataset builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of design points to characterize (the paper uses 10 000).
    pub samples: usize,
    /// Number of `V_in` grid points per transfer-curve sweep.
    pub sweep_points: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            samples: 10_000,
            sweep_points: 61,
        }
    }
}

/// The characterized design-space dataset (green boxes of Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitDataset {
    /// The design space the entries were drawn from.
    pub space: DesignSpace,
    /// All characterized circuits.
    pub entries: Vec<DatasetEntry>,
    /// Target-normalization bounds computed over `entries`.
    pub eta_bounds: EtaBounds,
    /// Design points that could not be characterized, with stage and cause.
    /// Ordered by sample index; identical at every thread count.
    pub failures: Vec<FailureRecord>,
}

impl CircuitDataset {
    /// Per-stage counts of the recorded failures.
    pub fn failure_tally(&self) -> FailureTally {
        let mut tally = FailureTally::default();
        for f in &self.failures {
            match f.stage {
                FailureStage::Build => tally.build += 1,
                FailureStage::Sweep => tally.sweep += 1,
                FailureStage::Fit => tally.fit += 1,
            }
        }
        tally
    }

    /// Splits the dataset into train/validation/test index sets with the
    /// paper's 70/20/10 proportions, deterministically shuffled by `seed`.
    pub fn split(&self, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut indices: Vec<usize> = (0..self.entries.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let n = indices.len();
        let n_train = (n as f64 * 0.7).round() as usize;
        let n_val = (n as f64 * 0.2).round() as usize;
        let train = indices[..n_train].to_vec();
        let val = indices[n_train..(n_train + n_val).min(n)].to_vec();
        let test = indices[(n_train + n_val).min(n)..].to_vec();
        (train, val, test)
    }
}

/// Samples the feasible design space with quasi Monte-Carlo, simulates each
/// circuit's DC transfer curve, and fits Eq. 2 — producing the `(ω, η)`
/// training data for the surrogate network.
///
/// Runs the per-circuit work in parallel (deterministic result order).
///
/// # Errors
///
/// Propagates sampling, simulation and fitting failures; a handful of
/// non-convergent corner circuits are tolerated and skipped, but if more than
/// 5 % of points fail the whole build errors out.
///
/// # Examples
///
/// ```no_run
/// use pnc_surrogate::{build_dataset, DatasetConfig};
///
/// let data = build_dataset(&DatasetConfig { samples: 1000, sweep_points: 41 })?;
/// assert!(data.entries.len() >= 950);
/// # Ok::<(), pnc_surrogate::SurrogateError>(())
/// ```
pub fn build_dataset(config: &DatasetConfig) -> Result<CircuitDataset, SurrogateError> {
    build_dataset_with(config, &ParallelConfig::automatic())
}

/// [`build_dataset`] with an explicit thread-count configuration.
///
/// The QMC design points are sampled serially (their sequence never depends
/// on scheduling); only the independent per-circuit simulate-and-fit work
/// fans out, and results come back in sample order — the dataset is
/// identical at every thread count.
///
/// # Errors
///
/// Same contract as [`build_dataset`].
pub fn build_dataset_with(
    config: &DatasetConfig,
    parallel: &ParallelConfig,
) -> Result<CircuitDataset, SurrogateError> {
    build_dataset_opts(
        config,
        &BuildOptions {
            parallel: *parallel,
            ..BuildOptions::default()
        },
    )
}

/// Extended knobs of the dataset builder, for diagnostics and tests.
#[derive(Clone, Copy, Default)]
pub struct BuildOptions<'a> {
    /// Thread-count configuration (see [`build_dataset_with`]).
    pub parallel: ParallelConfig,
    /// Abort the build when more than this fraction of points fails
    /// (`None` = the default 5 %).
    pub max_failure_fraction: Option<f64>,
    /// Optional per-sample DC solver override, keyed by the QMC sample
    /// index. Used to install custom
    /// [`RecoveryPolicy`](pnc_spice::RecoveryPolicy)s, or — in tests — fault
    /// injection on chosen samples. Keying on the (thread-invariant) sample
    /// index keeps the build deterministic.
    pub solver_factory: Option<&'a (dyn Fn(usize) -> DcSolver + Sync)>,
}

/// Characterizes one design point: build the netlist, sweep the DC transfer
/// curve, fit Eq. 2. This is the per-point physics shared — call for call —
/// by the batch builder below and the streaming builder
/// ([`crate::StreamBuilder`]), which is what makes a streamed dataset
/// bit-identical to the batch oracle at any chunking.
pub(crate) fn characterize_point(
    index: usize,
    omega: &[f64; OMEGA_DIM],
    grid: &[f64],
    solver_factory: Option<&(dyn Fn(usize) -> DcSolver + Sync)>,
) -> Result<DatasetEntry, FailureRecord> {
    let fail = |stage: FailureStage, cause: String| FailureRecord {
        index,
        omega: *omega,
        stage,
        cause,
    };
    let params = NonlinearCircuitParams::from_array(*omega);
    let mut circuit =
        PtanhCircuit::build(&params).map_err(|e| fail(FailureStage::Build, e.to_string()))?;
    if let Some(factory) = solver_factory {
        circuit.set_solver(factory(index));
    }
    let curve = circuit
        .transfer_curve(grid)
        .map_err(|e| fail(FailureStage::Sweep, e.to_string()))?;
    let fit = fit_ptanh(&curve).map_err(|e| fail(FailureStage::Fit, e.to_string()))?;
    Ok(DatasetEntry {
        omega: *omega,
        eta: fit.curve.eta,
        fit_rmse: fit.rmse,
    })
}

/// [`build_dataset_with`] with full [`BuildOptions`].
///
/// # Errors
///
/// Same contract as [`build_dataset`]; the failure threshold is
/// [`BuildOptions::max_failure_fraction`].
///
/// # Examples
///
/// ```
/// use pnc_linalg::ParallelConfig;
/// use pnc_surrogate::{build_dataset_opts, BuildOptions, DatasetConfig};
///
/// # fn main() -> Result<(), pnc_surrogate::SurrogateError> {
/// let data = build_dataset_opts(
///     &DatasetConfig { samples: 12, sweep_points: 21 },
///     &BuildOptions {
///         parallel: ParallelConfig::serial(),
///         // Tolerate up to half the corner circuits failing in this tiny run.
///         max_failure_fraction: Some(0.5),
///         ..BuildOptions::default()
///     },
/// )?;
/// assert_eq!(data.entries.len() + data.failures.len(), 12);
/// # Ok(())
/// # }
/// ```
pub fn build_dataset_opts(
    config: &DatasetConfig,
    options: &BuildOptions<'_>,
) -> Result<CircuitDataset, SurrogateError> {
    obs_register();
    let build_span = Span::new(&OBS_BUILD_SECONDS);
    let space = DesignSpace::paper();
    let omegas = space.sample(config.samples)?;
    let grid = linspace(0.0, pnc_spice::circuits::VDD, config.sweep_points.max(5));

    // Indices ride along with the samples so the worker closure (which only
    // sees one item) can key the solver factory and the failure records on
    // the scheduling-independent sample index.
    let indexed: Vec<(usize, [f64; OMEGA_DIM])> = omegas.into_iter().enumerate().collect();
    let results: Vec<Result<DatasetEntry, FailureRecord>> = options
        .parallel
        .ordered_par_map(&indexed, |(index, omega)| {
            characterize_point(*index, omega, &grid, options.solver_factory)
        });

    let mut entries = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(e) => entries.push(e),
            Err(record) => failures.push(record),
        }
    }

    OBS_POINTS.add(config.samples as u64);
    OBS_ENTRIES.add(entries.len() as u64);
    for e in &entries {
        OBS_FIT_RMSE.observe(e.fit_rmse);
    }
    for f in &failures {
        match f.stage {
            FailureStage::Build => OBS_FAIL_BUILD.increment(),
            FailureStage::Sweep => OBS_FAIL_SWEEP.increment(),
            FailureStage::Fit => OBS_FAIL_FIT.increment(),
        }
    }
    let build_seconds = build_span.elapsed_seconds();
    drop(build_span);
    if pnc_obs::sink::enabled() {
        pnc_obs::sink::emit(
            "surrogate.dataset.built",
            &[
                ("points", FieldValue::U64(config.samples as u64)),
                ("entries", FieldValue::U64(entries.len() as u64)),
                ("failures", FieldValue::U64(failures.len() as u64)),
                ("seconds", FieldValue::F64(build_seconds)),
                (
                    "points_per_second",
                    FieldValue::F64(config.samples as f64 / build_seconds.max(1e-9)),
                ),
            ],
        );
    }

    let max_fraction = options.max_failure_fraction.unwrap_or(0.05);
    if failures.len() as f64 > max_fraction * config.samples as f64 {
        return Err(SurrogateError::BadDataset {
            detail: format!(
                "{} of {} circuit characterizations failed (first: index {}, {:?} stage: {})",
                failures.len(),
                config.samples,
                failures[0].index,
                failures[0].stage,
                failures[0].cause,
            ),
        });
    }

    let eta_bounds = EtaBounds::from_entries(&entries)?;
    Ok(CircuitDataset {
        space,
        entries,
        eta_bounds,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> CircuitDataset {
        build_dataset(&DatasetConfig {
            samples: 60,
            sweep_points: 31,
        })
        .expect("tiny dataset builds")
    }

    #[test]
    fn builds_and_fits_reasonably() {
        let data = tiny_dataset();
        assert!(data.entries.len() >= 57, "{} entries", data.entries.len());
        // The vast majority of circuits must be well described by Eq. 2.
        let good = data.entries.iter().filter(|e| e.fit_rmse < 0.05).count();
        assert!(
            good * 10 >= data.entries.len() * 9,
            "only {good}/{} fits below 50 mV rmse",
            data.entries.len()
        );
    }

    #[test]
    fn dataset_is_identical_across_thread_counts() {
        let config = DatasetConfig {
            samples: 40,
            sweep_points: 21,
        };
        let serial = build_dataset_with(&config, &ParallelConfig::serial()).unwrap();
        for threads in [2, 4] {
            let parallel =
                build_dataset_with(&config, &ParallelConfig::with_threads(threads)).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn eta_bounds_normalize_round_trips() {
        let data = tiny_dataset();
        let b = data.eta_bounds;
        for e in &data.entries[..10.min(data.entries.len())] {
            let n = b.normalize(&e.eta);
            for v in n {
                assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
            let back = b.denormalize(&n);
            for (k, &v) in back.iter().enumerate() {
                assert!((v - e.eta[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eta_bounds_reject_empty_and_constant() {
        assert!(EtaBounds::from_entries(&[]).is_err());
        let e = DatasetEntry {
            omega: [1.0; OMEGA_DIM],
            eta: [0.5, 0.5, 0.5, 0.5],
            fit_rmse: 0.0,
        };
        assert!(EtaBounds::from_entries(&[e, e]).is_err());
    }

    /// Regression: a constant η column must surface as the typed
    /// `DegenerateEta` error naming the component — never reach `normalize`
    /// where the zero range would silently produce NaN.
    #[test]
    fn constant_eta_column_is_a_typed_error_not_nan() {
        let entry = |c: f64| DatasetEntry {
            omega: [1.0; OMEGA_DIM],
            eta: [c, 1.0 + c, 0.25, 2.0 * c + 0.1],
            fit_rmse: 0.0,
        };
        // Component 2 is constant at 0.25; the others vary.
        let entries = [entry(0.1), entry(0.4), entry(0.9)];
        match EtaBounds::from_entries(&entries) {
            Err(SurrogateError::DegenerateEta { component, value }) => {
                assert_eq!(component, 2);
                assert_eq!(value, 0.25);
            }
            other => panic!("expected DegenerateEta, got {other:?}"),
        }
    }

    /// A NaN η must be rejected at observation time: `f64::min`/`max`
    /// silently ignore NaN, so without the explicit check a poisoned entry
    /// would produce plausible-looking bounds and NaN normalized targets.
    #[test]
    fn non_finite_eta_is_rejected_at_the_door() {
        let good = DatasetEntry {
            omega: [1.0; OMEGA_DIM],
            eta: [0.1, 0.2, 0.3, 0.4],
            fit_rmse: 0.0,
        };
        let mut bad = good;
        bad.eta[1] = f64::NAN;
        let err = EtaBounds::from_entries(&[good, bad]).unwrap_err();
        assert!(
            matches!(err, SurrogateError::BadDataset { .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    /// The streaming accumulator must reproduce the batch bounds bit-for-bit
    /// regardless of observation order (min/max are order-independent).
    #[test]
    fn accumulator_matches_batch_bounds_bitwise() {
        let data = tiny_dataset();
        let batch = EtaBounds::from_entries(&data.entries).unwrap();
        let mut acc = EtaBoundsAccumulator::new();
        for e in data.entries.iter().rev() {
            acc.observe(&e.eta).unwrap();
        }
        let streamed = acc.finish().unwrap();
        for k in 0..4 {
            assert_eq!(batch.lo[k].to_bits(), streamed.lo[k].to_bits());
            assert_eq!(batch.hi[k].to_bits(), streamed.hi[k].to_bits());
        }
        assert_eq!(acc.count(), data.entries.len());
    }

    #[test]
    fn split_proportions_and_disjointness() {
        let data = tiny_dataset();
        let (train, val, test) = data.split(7);
        let n = data.entries.len();
        assert_eq!(train.len() + val.len() + test.len(), n);
        assert!((train.len() as f64 / n as f64 - 0.7).abs() < 0.05);
        assert!((val.len() as f64 / n as f64 - 0.2).abs() < 0.05);
        let mut all: Vec<usize> = train.iter().chain(&val).chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "splits must be disjoint");
        // Deterministic in the seed.
        assert_eq!(data.split(7), (train, val, test));
    }

    #[test]
    fn successful_build_has_no_failure_records() {
        let data = tiny_dataset();
        assert!(data.failures.is_empty());
        assert_eq!(data.failure_tally().total(), 0);
    }

    /// A solver factory injecting an unrecoverable fault on chosen sample
    /// indices: those samples fail mid-sweep at `V_in = 0.5`.
    fn faulting_factory(bad: &'static [usize]) -> impl Fn(usize) -> pnc_spice::DcSolver + Sync {
        move |index| {
            let mut solver = pnc_spice::DcSolver::new();
            if bad.contains(&index) {
                solver.fault_injection =
                    Some(pnc_spice::FaultInjection::unrecoverable_at(vec![0.5]));
            }
            solver
        }
    }

    #[test]
    fn injected_faults_are_recorded_with_stage_and_cause() {
        const BAD: &[usize] = &[3, 17];
        let config = DatasetConfig {
            samples: 40,
            sweep_points: 21,
        };
        let factory = faulting_factory(BAD);
        let data = build_dataset_opts(
            &config,
            &BuildOptions {
                solver_factory: Some(&factory),
                ..BuildOptions::default()
            },
        )
        .unwrap();

        assert_eq!(data.entries.len(), 40 - BAD.len());
        assert_eq!(data.failures.len(), BAD.len());
        let tally = data.failure_tally();
        assert_eq!(tally.sweep, BAD.len());
        assert_eq!(tally.build + tally.fit, 0);
        for (record, &expected_index) in data.failures.iter().zip(BAD) {
            assert_eq!(record.index, expected_index);
            assert_eq!(record.stage, FailureStage::Sweep);
            assert!(
                record.cause.contains("did not converge"),
                "cause: {}",
                record.cause
            );
            assert!(record.omega.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn failure_records_are_identical_across_thread_counts() {
        const BAD: &[usize] = &[1, 9, 22];
        let config = DatasetConfig {
            samples: 40,
            sweep_points: 21,
        };
        let factory = faulting_factory(BAD);
        let build = |parallel: ParallelConfig| {
            build_dataset_opts(
                &config,
                &BuildOptions {
                    parallel,
                    max_failure_fraction: Some(0.2),
                    solver_factory: Some(&factory),
                },
            )
            .unwrap()
        };
        let serial = build(ParallelConfig::serial());
        assert_eq!(serial.failures.len(), BAD.len());
        for threads in [2, 4] {
            let parallel = build(ParallelConfig::with_threads(threads));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn recoverable_faults_leave_the_dataset_intact() {
        // When the ladder can rescue the injected failure, the dataset must
        // contain every sample and no failure records — and match the
        // unfaulted build, because recovery converges to the same operating
        // points.
        let config = DatasetConfig {
            samples: 20,
            sweep_points: 21,
        };
        let clean = build_dataset_with(&config, &ParallelConfig::serial()).unwrap();
        let factory = |_index: usize| pnc_spice::DcSolver {
            fault_injection: Some(pnc_spice::FaultInjection::recoverable_at(vec![0.5])),
            ..pnc_spice::DcSolver::new()
        };
        let rescued = build_dataset_opts(
            &config,
            &BuildOptions {
                parallel: ParallelConfig::serial(),
                solver_factory: Some(&factory),
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert!(rescued.failures.is_empty(), "ladder should rescue all");
        assert_eq!(clean.entries.len(), rescued.entries.len());
        for (a, b) in clean.entries.iter().zip(&rescued.entries) {
            assert_eq!(a.omega, b.omega);
            for k in 0..4 {
                assert!(
                    (a.eta[k] - b.eta[k]).abs() < 1e-6,
                    "eta[{k}]: {} vs {}",
                    a.eta[k],
                    b.eta[k]
                );
            }
        }
    }

    #[test]
    fn too_many_failures_abort_with_stage_detail() {
        const BAD: &[usize] = &[0, 1, 2, 3, 4];
        let config = DatasetConfig {
            samples: 20,
            sweep_points: 21,
        };
        let factory = faulting_factory(BAD);
        let err = build_dataset_opts(
            &config,
            &BuildOptions {
                solver_factory: Some(&factory),
                ..BuildOptions::default()
            },
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("5 of 20"), "{msg}");
        assert!(msg.contains("Sweep"), "{msg}");
        // Raising the threshold lets the same build succeed and keep records.
        let data = build_dataset_opts(
            &config,
            &BuildOptions {
                max_failure_fraction: Some(0.5),
                solver_factory: Some(&factory),
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert_eq!(data.failure_tally().sweep, BAD.len());
    }

    #[test]
    fn failure_records_serialize_round_trip() {
        const BAD: &[usize] = &[2];
        let config = DatasetConfig {
            samples: 20,
            sweep_points: 21,
        };
        let factory = faulting_factory(BAD);
        let data = build_dataset_opts(
            &config,
            &BuildOptions {
                solver_factory: Some(&factory),
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let json = serde_json::to_string(&data).unwrap();
        let back: CircuitDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.failures.len(), 1);
        assert_eq!(back.failures[0].index, 2);
        assert_eq!(back.failures[0].stage, FailureStage::Sweep);
        assert_eq!(back.failures[0].cause, data.failures[0].cause);
    }

    #[test]
    fn dataset_serializes() {
        // This environment's serde_json float writer is shortest-repr but not
        // exactly round-tripping, so compare with an ULP-scale tolerance.
        let data = tiny_dataset();
        let json = serde_json::to_string(&data).unwrap();
        let back: CircuitDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(data.entries.len(), back.entries.len());
        for (a, b) in data.entries.iter().zip(&back.entries) {
            for k in 0..OMEGA_DIM {
                assert!((a.omega[k] - b.omega[k]).abs() <= 1e-12 * a.omega[k].abs());
            }
            for k in 0..4 {
                assert!((a.eta[k] - b.eta[k]).abs() <= 1e-9 * a.eta[k].abs().max(1.0));
            }
        }
    }
}
