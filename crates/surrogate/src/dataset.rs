use crate::{DesignSpace, SurrogateError, OMEGA_DIM};
use pnc_fit::fit_ptanh;
use pnc_linalg::ParallelConfig;
use pnc_spice::circuits::{NonlinearCircuitParams, PtanhCircuit};
use pnc_spice::sweep::linspace;
use serde::{Deserialize, Serialize};

/// One characterized circuit: physical parameters and fitted curve
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Physical design parameters ω (SI units).
    pub omega: [f64; OMEGA_DIM],
    /// Fitted auxiliary parameters η of Eq. 2.
    pub eta: [f64; 4],
    /// Root-mean-square error of the ptanh fit, in volts.
    pub fit_rmse: f64,
}

/// Min–max bounds of the four η components over a dataset, used to
/// normalize the network's regression targets (and saved with the model for
/// denormalization, as Sec. III-A prescribes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtaBounds {
    /// Per-component minimum of η.
    pub lo: [f64; 4],
    /// Per-component maximum of η.
    pub hi: [f64; 4],
}

impl EtaBounds {
    /// Computes bounds over a set of entries.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::BadDataset`] if `entries` is empty or some
    /// η component is constant (which would make normalization degenerate).
    pub fn from_entries(entries: &[DatasetEntry]) -> Result<Self, SurrogateError> {
        if entries.is_empty() {
            return Err(SurrogateError::BadDataset {
                detail: "no entries".into(),
            });
        }
        let mut lo = [f64::INFINITY; 4];
        let mut hi = [f64::NEG_INFINITY; 4];
        for e in entries {
            for k in 0..4 {
                lo[k] = lo[k].min(e.eta[k]);
                hi[k] = hi[k].max(e.eta[k]);
            }
        }
        for k in 0..4 {
            if hi[k] <= lo[k] || hi[k].is_nan() || lo[k].is_nan() {
                return Err(SurrogateError::BadDataset {
                    detail: format!("eta component {k} is constant at {}", lo[k]),
                });
            }
        }
        Ok(EtaBounds { lo, hi })
    }

    /// Normalizes η to `[0, 1]^4`.
    pub fn normalize(&self, eta: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for k in 0..4 {
            out[k] = (eta[k] - self.lo[k]) / (self.hi[k] - self.lo[k]);
        }
        out
    }

    /// Inverts [`EtaBounds::normalize`].
    pub fn denormalize(&self, eta_norm: &[f64; 4]) -> [f64; 4] {
        let mut out = [0.0; 4];
        for k in 0..4 {
            out[k] = self.lo[k] + eta_norm[k] * (self.hi[k] - self.lo[k]);
        }
        out
    }
}

/// Configuration of the dataset builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of design points to characterize (the paper uses 10 000).
    pub samples: usize,
    /// Number of `V_in` grid points per transfer-curve sweep.
    pub sweep_points: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            samples: 10_000,
            sweep_points: 61,
        }
    }
}

/// The characterized design-space dataset (green boxes of Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitDataset {
    /// The design space the entries were drawn from.
    pub space: DesignSpace,
    /// All characterized circuits.
    pub entries: Vec<DatasetEntry>,
    /// Target-normalization bounds computed over `entries`.
    pub eta_bounds: EtaBounds,
}

impl CircuitDataset {
    /// Splits the dataset into train/validation/test index sets with the
    /// paper's 70/20/10 proportions, deterministically shuffled by `seed`.
    pub fn split(&self, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut indices: Vec<usize> = (0..self.entries.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let n = indices.len();
        let n_train = (n as f64 * 0.7).round() as usize;
        let n_val = (n as f64 * 0.2).round() as usize;
        let train = indices[..n_train].to_vec();
        let val = indices[n_train..(n_train + n_val).min(n)].to_vec();
        let test = indices[(n_train + n_val).min(n)..].to_vec();
        (train, val, test)
    }
}

/// Samples the feasible design space with quasi Monte-Carlo, simulates each
/// circuit's DC transfer curve, and fits Eq. 2 — producing the `(ω, η)`
/// training data for the surrogate network.
///
/// Runs the per-circuit work in parallel (deterministic result order).
///
/// # Errors
///
/// Propagates sampling, simulation and fitting failures; a handful of
/// non-convergent corner circuits are tolerated and skipped, but if more than
/// 5 % of points fail the whole build errors out.
///
/// # Examples
///
/// ```no_run
/// use pnc_surrogate::{build_dataset, DatasetConfig};
///
/// let data = build_dataset(&DatasetConfig { samples: 1000, sweep_points: 41 })?;
/// assert!(data.entries.len() >= 950);
/// # Ok::<(), pnc_surrogate::SurrogateError>(())
/// ```
pub fn build_dataset(config: &DatasetConfig) -> Result<CircuitDataset, SurrogateError> {
    build_dataset_with(config, &ParallelConfig::automatic())
}

/// [`build_dataset`] with an explicit thread-count configuration.
///
/// The QMC design points are sampled serially (their sequence never depends
/// on scheduling); only the independent per-circuit simulate-and-fit work
/// fans out, and results come back in sample order — the dataset is
/// identical at every thread count.
///
/// # Errors
///
/// Same contract as [`build_dataset`].
pub fn build_dataset_with(
    config: &DatasetConfig,
    parallel: &ParallelConfig,
) -> Result<CircuitDataset, SurrogateError> {
    let space = DesignSpace::paper();
    let omegas = space.sample(config.samples)?;
    let grid = linspace(0.0, pnc_spice::circuits::VDD, config.sweep_points.max(5));

    let results: Vec<Result<DatasetEntry, SurrogateError>> =
        parallel.ordered_par_map(&omegas, |omega| {
            let params = NonlinearCircuitParams::from_array(*omega);
            let mut circuit = PtanhCircuit::build(&params)?;
            let curve = circuit.transfer_curve(&grid)?;
            let fit = fit_ptanh(&curve)?;
            Ok(DatasetEntry {
                omega: *omega,
                eta: fit.curve.eta,
                fit_rmse: fit.rmse,
            })
        });

    let mut entries = Vec::with_capacity(results.len());
    let mut failures = 0usize;
    for r in results {
        match r {
            Ok(e) => entries.push(e),
            Err(_) => failures += 1,
        }
    }
    if failures * 20 > config.samples {
        return Err(SurrogateError::BadDataset {
            detail: format!(
                "{failures} of {} circuit characterizations failed",
                config.samples
            ),
        });
    }

    let eta_bounds = EtaBounds::from_entries(&entries)?;
    Ok(CircuitDataset {
        space,
        entries,
        eta_bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> CircuitDataset {
        build_dataset(&DatasetConfig {
            samples: 60,
            sweep_points: 31,
        })
        .expect("tiny dataset builds")
    }

    #[test]
    fn builds_and_fits_reasonably() {
        let data = tiny_dataset();
        assert!(data.entries.len() >= 57, "{} entries", data.entries.len());
        // The vast majority of circuits must be well described by Eq. 2.
        let good = data.entries.iter().filter(|e| e.fit_rmse < 0.05).count();
        assert!(
            good * 10 >= data.entries.len() * 9,
            "only {good}/{} fits below 50 mV rmse",
            data.entries.len()
        );
    }

    #[test]
    fn dataset_is_identical_across_thread_counts() {
        let config = DatasetConfig {
            samples: 40,
            sweep_points: 21,
        };
        let serial = build_dataset_with(&config, &ParallelConfig::serial()).unwrap();
        for threads in [2, 4] {
            let parallel =
                build_dataset_with(&config, &ParallelConfig::with_threads(threads)).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn eta_bounds_normalize_round_trips() {
        let data = tiny_dataset();
        let b = data.eta_bounds;
        for e in &data.entries[..10.min(data.entries.len())] {
            let n = b.normalize(&e.eta);
            for v in n {
                assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
            let back = b.denormalize(&n);
            for (k, &v) in back.iter().enumerate() {
                assert!((v - e.eta[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eta_bounds_reject_empty_and_constant() {
        assert!(EtaBounds::from_entries(&[]).is_err());
        let e = DatasetEntry {
            omega: [1.0; OMEGA_DIM],
            eta: [0.5, 0.5, 0.5, 0.5],
            fit_rmse: 0.0,
        };
        assert!(EtaBounds::from_entries(&[e, e]).is_err());
    }

    #[test]
    fn split_proportions_and_disjointness() {
        let data = tiny_dataset();
        let (train, val, test) = data.split(7);
        let n = data.entries.len();
        assert_eq!(train.len() + val.len() + test.len(), n);
        assert!((train.len() as f64 / n as f64 - 0.7).abs() < 0.05);
        assert!((val.len() as f64 / n as f64 - 0.2).abs() < 0.05);
        let mut all: Vec<usize> = train.iter().chain(&val).chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "splits must be disjoint");
        // Deterministic in the seed.
        assert_eq!(data.split(7), (train, val, test));
    }

    #[test]
    fn dataset_serializes() {
        // This environment's serde_json float writer is shortest-repr but not
        // exactly round-tripping, so compare with an ULP-scale tolerance.
        let data = tiny_dataset();
        let json = serde_json::to_string(&data).unwrap();
        let back: CircuitDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(data.entries.len(), back.entries.len());
        for (a, b) in data.entries.iter().zip(&back.entries) {
            for k in 0..OMEGA_DIM {
                assert!((a.omega[k] - b.omega[k]).abs() <= 1e-12 * a.omega[k].abs());
            }
            for k in 0..4 {
                assert!((a.eta[k] - b.eta[k]).abs() <= 1e-9 * a.eta[k].abs().max(1.0));
            }
        }
    }
}
