//! Surrogate models of printed nonlinear circuits (Sec. III-A of the paper).
//!
//! The pipeline of Fig. 3, end to end:
//!
//! 1. [`DesignSpace`] — the feasible component box of **Tab. I** with the
//!    divider inequality constraints, sampled with quasi Monte-Carlo
//!    ([`DesignSpace::sample`]).
//! 2. [`build_dataset`] — simulate every sampled circuit with `pnc-spice`,
//!    fit the ptanh curve of Eq. 2 with `pnc-fit`, and collect `(ω, η)`
//!    pairs (the green boxes of Fig. 3).
//! 3. [`Mlp`] / [`train_surrogate`] — train the paper's 13-layer regression
//!    network (10-9-9-8-8-7-7-6-6-6-5-5-5-4) on normalized, ratio-augmented
//!    inputs to predict normalized η (the blue box of Fig. 3).
//! 4. [`SurrogateModel`] — the deployable artifact: normalization constants
//!    plus network weights, usable both as a plain function
//!    ([`SurrogateModel::predict_eta`]) and inside an autodiff graph
//!    ([`SurrogateModel::predict_eta_graph`]) so that the pNN can learn the
//!    physical parameters ω by gradient descent.
//!
//! # Examples
//!
//! Build a miniature end-to-end surrogate (tiny sizes for doc-test speed):
//!
//! ```no_run
//! use pnc_surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig};
//!
//! # fn main() -> Result<(), pnc_surrogate::SurrogateError> {
//! let data = build_dataset(&DatasetConfig { samples: 200, sweep_points: 41 })?;
//! let (model, report) = train_surrogate(&data, &TrainConfig::default())?;
//! println!("validation MSE: {}", report.val_mse);
//! let eta = model.predict_eta(&data.entries[0].omega);
//! println!("predicted eta: {eta:?}");
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! Dataset builds feed the `surrogate.dataset.*` counters and histograms
//! of `pnc-obs` (points, entries, per-stage failures, fit RMSE, build
//! duration) — see `docs/METRICS.md` at the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod dataset;
mod design_space;
mod error;
mod mlp;
mod model;
mod store;
mod stream;

pub use active::{ActiveConfig, Committee, Reservoir};
pub use dataset::{
    build_dataset, build_dataset_opts, build_dataset_with, BuildOptions, CircuitDataset,
    DatasetConfig, DatasetEntry, EtaBounds, EtaBoundsAccumulator, FailureRecord, FailureStage,
    FailureTally,
};
pub use design_space::{DesignSampler, DesignSpace, EXTENDED_DIM, OMEGA_DIM};
pub use error::SurrogateError;
pub use mlp::{Mlp, PAPER_LAYER_SIZES};
pub use model::{
    train_surrogate, train_surrogate_streaming, SurrogateModel, TrainConfig, TrainReport,
};
pub use store::{
    DatasetStore, ResumeReport, SamplingMode, StoreError, StoreMeta, StoreRecord, CAUSE_CAP,
    FORMAT_VERSION, RECORD_BYTES,
};
pub use stream::{load_circuit_dataset, ChunkSummary, StreamBuilder, StreamConfig, StreamReport};
