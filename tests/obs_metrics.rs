//! Integration tests for the observability layer: a miniature fig4-style
//! pipeline (SPICE characterization → ptanh extraction → dataset build) must
//! produce a metrics summary containing the keys documented in
//! `docs/METRICS.md`, with counters bit-identical across 1, 2, and 8 worker
//! threads.
//!
//! The metric registry is process-global, so the tests in this binary
//! serialize through one mutex and `reset()` before each measured run.

use printed_neuromorphic::fit::fit_ptanh;
use printed_neuromorphic::linalg::ParallelConfig;
use printed_neuromorphic::obs;
use printed_neuromorphic::spice::circuits::{characteristic_curve, NonlinearCircuitParams};
use printed_neuromorphic::surrogate::{build_dataset_opts, BuildOptions, DatasetConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("unpoisoned")
}

/// The counters the fig4 metrics summary documents in `docs/METRICS.md` and
/// which any SPICE-and-fit trajectory must populate.
const DOCUMENTED_COUNTERS: &[&str] = &[
    "spice.solve.total",
    "spice.solve.failures",
    "spice.newton.iterations",
    "spice.newton.attempts",
    "spice.recovery.plain",
    "fit.lm.runs",
    "fit.lm.iterations",
    "fit.lm.lambda_escalations",
    "fit.ptanh.fits",
    "surrogate.dataset.points",
    "surrogate.dataset.entries",
];

const DOCUMENTED_HISTOGRAMS: &[&str] = &[
    "spice.newton.residual",
    "fit.lm.final_cost",
    "fit.ptanh.rmse",
    "surrogate.dataset.fit_rmse",
    "surrogate.dataset.build_seconds",
];

/// A miniature fig4 trajectory: one characteristic curve + fit, then a tiny
/// dataset build, all at the given thread count.
fn run_pipeline(threads: usize) -> obs::MetricsSnapshot {
    obs::reset();
    let curve = characteristic_curve(&NonlinearCircuitParams::nominal(), 31).expect("simulates");
    fit_ptanh(&curve).expect("fits");
    build_dataset_opts(
        &DatasetConfig {
            samples: 16,
            sweep_points: 21,
        },
        &BuildOptions {
            parallel: ParallelConfig::with_threads(threads),
            max_failure_fraction: Some(0.5),
            ..BuildOptions::default()
        },
    )
    .expect("builds");
    obs::snapshot()
}

#[test]
fn fig4_style_summary_contains_documented_keys() {
    let _guard = test_lock();
    let snap = run_pipeline(2);
    for name in DOCUMENTED_COUNTERS {
        assert!(
            snap.counter(name).is_some(),
            "documented counter {name} missing from summary"
        );
    }
    for name in DOCUMENTED_HISTOGRAMS {
        assert!(
            snap.histogram(name).is_some(),
            "documented histogram {name} missing from summary"
        );
    }
    // Sanity on contents: work actually happened and was tallied.
    assert!(snap.counter("spice.solve.total").unwrap() > 0);
    assert!(snap.counter("fit.lm.runs").unwrap() > 0);
    assert_eq!(snap.counter("surrogate.dataset.points"), Some(16));
    assert!(snap.histogram("spice.newton.residual").unwrap().count > 0);

    // The JSON serialization carries the same keys.
    let json = snap.to_json();
    for name in DOCUMENTED_COUNTERS.iter().chain(DOCUMENTED_HISTOGRAMS) {
        assert!(json.contains(name), "{name} missing from JSON summary");
    }
    obs::reset();
}

#[test]
fn pipeline_counters_are_bit_identical_across_thread_counts() {
    let _guard = test_lock();
    let reference = run_pipeline(1);
    for threads in [2, 8] {
        let snap = run_pipeline(threads);
        assert_eq!(
            snap.counters, reference.counters,
            "counters diverged at {threads} threads"
        );
        // Numeric histograms (residuals, costs, rmse) are deterministic too;
        // only wall-clock duration histograms are exempt, so compare the
        // rest field by field.
        for (a, b) in snap.histograms.iter().zip(&reference.histograms) {
            assert_eq!(a.name, b.name);
            if a.name.ends_with("_seconds") {
                assert_eq!(a.count, b.count, "{}: count must still match", a.name);
            } else {
                assert_eq!(a, b, "{} diverged at {threads} threads", a.name);
            }
        }
    }
    obs::reset();
}

#[test]
fn write_summary_produces_parseable_json_file() {
    let _guard = test_lock();
    obs::reset();
    let curve = characteristic_curve(&NonlinearCircuitParams::nominal(), 21).expect("simulates");
    fit_ptanh(&curve).expect("fits");
    let dir = std::env::temp_dir().join("pnc-obs-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("summary.json");
    obs::write_summary(&path).expect("writes");
    let text = std::fs::read_to_string(&path).expect("readable");
    let value: serde::Value = serde_json::from_str(&text).expect("valid JSON");
    drop(value);
    assert!(text.contains("spice.solve.total"));
    std::fs::remove_file(&path).ok();
    obs::reset();
}
