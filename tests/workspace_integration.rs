//! Cross-crate integration tests: the full stack, from SPICE to trained,
//! exported printed designs.

use printed_neuromorphic::artifacts;
use printed_neuromorphic::datasets::benchmark_suite;
use printed_neuromorphic::fit::fit_ptanh;
use printed_neuromorphic::pnn::{
    accuracy, mc_evaluate, LabeledData, Pnn, PnnConfig, PrintedDesign, TrainConfig, Trainer,
    VariationModel,
};
use printed_neuromorphic::spice::circuits::{characteristic_curve, NonlinearCircuitParams};
use std::sync::Arc;

fn surrogate() -> Arc<printed_neuromorphic::surrogate::SurrogateModel> {
    Arc::new(artifacts::quick_surrogate().expect("quick surrogate"))
}

/// The surrogate's η prediction reproduces the SPICE + fit ground truth for
/// circuits it has never seen: its curve values must track the simulated
/// transfer curve.
#[test]
fn surrogate_tracks_spice_ground_truth() {
    // The production-quality surrogate (cached artifact); the quick one is
    // too coarse for a ground-truth comparison.
    let model = Arc::new(artifacts::default_surrogate().expect("default surrogate"));
    let probes = [
        NonlinearCircuitParams::nominal(),
        NonlinearCircuitParams {
            r1: 333.0,
            r2: 111.0,
            r3: 222_000.0,
            r4: 111_000.0,
            r5: 166_000.0,
            w: 444e-6,
            l: 33e-6,
        },
    ];
    for params in probes {
        let curve = characteristic_curve(&params, 61).expect("simulates");
        let truth = fit_ptanh(&curve).expect("fits").curve;
        let eta = model.predict_eta(&params.to_array());
        let predicted = printed_neuromorphic::fit::Ptanh { eta };
        // Compare curve values over the supply range, not raw η (η is not
        // uniquely identified for near-flat curves).
        let mut worst: f64 = 0.0;
        for k in 0..21 {
            let v = k as f64 / 20.0;
            worst = worst.max((predicted.eval(v) - truth.eval(v)).abs());
        }
        assert!(
            worst < 0.25,
            "surrogate curve deviates by {worst} V from SPICE for {params:?}"
        );
    }
}

/// Full pipeline smoke test on a second dataset: train with variation
/// awareness, evaluate robustness, export a feasible design.
#[test]
fn train_evaluate_export_round_trip() {
    let model = surrogate();
    let data = printed_neuromorphic::datasets::generators::acute_inflammation();
    let (train, val, test) = data.split(3);
    let train_d = LabeledData::new(&train.features, &train.labels).expect("consistent");
    let val_d = LabeledData::new(&val.features, &val.labels).expect("consistent");
    let test_d = LabeledData::new(&test.features, &test.labels).expect("consistent");

    let mut pnn = Pnn::new(
        PnnConfig::for_dataset(data.num_features(), data.num_classes),
        model,
    )
    .expect("valid config");
    Trainer::new(TrainConfig {
        variation: VariationModel::Uniform { epsilon: 0.05 },
        n_train_mc: 5,
        n_val_mc: 3,
        max_epochs: 150,
        patience: 150,
        ..TrainConfig::default()
    })
    .train(&mut pnn, train_d, val_d)
    .expect("trains");

    let nominal = accuracy(&pnn, test_d, None).expect("evaluates");
    assert!(
        nominal > data.majority_accuracy() - 0.05,
        "trained accuracy {nominal} below majority floor"
    );

    let stats = mc_evaluate(
        &pnn,
        test_d,
        &VariationModel::Uniform { epsilon: 0.05 },
        30,
        0,
    )
    .expect("mc evaluates");
    assert!(stats.mean > 0.4);
    assert_eq!(stats.accuracies.len(), 30);

    let design = PrintedDesign::from_pnn(&pnn);
    assert!(design.is_feasible());
    assert!(design.printed_resistor_count() > 0);
    // Round trip through JSON (the printable artifact).
    let json = serde_json::to_string(&design).expect("serializes");
    let back: PrintedDesign = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(design.crossbars.len(), back.crossbars.len());
}

/// Every dataset in the suite is compatible with the pNN input convention
/// (features are voltages in [0, 1]) and produces a working forward pass.
#[test]
fn all_benchmark_datasets_flow_through_the_network() {
    let model = surrogate();
    for data in benchmark_suite() {
        let pnn = Pnn::new(
            PnnConfig::for_dataset(data.num_features(), data.num_classes),
            model.clone(),
        )
        .expect("valid config");
        // A small slice is enough to validate the plumbing.
        let idx: Vec<usize> = (0..data.len().min(16)).collect();
        let subset = data.subset(&idx);
        let preds = pnn.predict(&subset.features, None).expect("forward pass");
        assert_eq!(preds.len(), subset.len(), "{}", data.name);
        assert!(
            preds.iter().all(|&p| p < data.num_classes),
            "{}: prediction out of range",
            data.name
        );
    }
}

/// Circuit-level validation: inference re-run with MNA-solved crossbars and
/// directly simulated nonlinear circuits must agree with the abstract pNN
/// to within the surrogate tolerance, and predict the same classes.
#[test]
fn hardware_in_the_loop_matches_the_model() {
    use printed_neuromorphic::pnn::hardware::HardwareSimulator;

    let model = Arc::new(artifacts::default_surrogate().expect("default surrogate"));
    let data = printed_neuromorphic::datasets::generators::iris();
    let (train, val, _) = data.split(1);
    let train_d = LabeledData::new(&train.features, &train.labels).expect("consistent");
    let val_d = LabeledData::new(&val.features, &val.labels).expect("consistent");

    let mut pnn = Pnn::new(
        PnnConfig::for_dataset(data.num_features(), data.num_classes),
        model,
    )
    .expect("valid config");
    Trainer::new(TrainConfig {
        max_epochs: 120,
        patience: 120,
        ..TrainConfig::default()
    })
    .train(&mut pnn, train_d, val_d)
    .expect("trains");

    let idx: Vec<usize> = (0..12).collect();
    let probe = train.subset(&idx);
    let report = HardwareSimulator::new()
        .model_hardware_gap(&pnn, &probe.features)
        .expect("hardware simulation runs");
    // The 2000-sample default surrogate keeps the mean gap around
    // 0.05-0.10 V depending on where training lands in the design space.
    assert!(
        report.mean_voltage_gap < 0.15,
        "surrogate gap too large: {report:?}"
    );
    assert!(
        report.prediction_agreement >= 0.75,
        "hardware disagrees with the model: {report:?}"
    );
}

/// Determinism across the whole stack: same seeds, same results.
#[test]
fn whole_stack_is_deterministic() {
    let model = surrogate();
    let data = printed_neuromorphic::datasets::generators::balance_scale();
    let (train, val, _) = data.split(5);
    let train_d = LabeledData::new(&train.features, &train.labels).expect("consistent");
    let val_d = LabeledData::new(&val.features, &val.labels).expect("consistent");

    let run = || {
        let mut pnn = Pnn::new(
            PnnConfig::for_dataset(data.num_features(), data.num_classes),
            model.clone(),
        )
        .expect("valid config");
        let report = Trainer::new(TrainConfig {
            variation: VariationModel::Uniform { epsilon: 0.05 },
            n_train_mc: 3,
            n_val_mc: 2,
            max_epochs: 30,
            patience: 30,
            ..TrainConfig::default()
        })
        .train(&mut pnn, train_d, val_d)
        .expect("trains");
        (report.train_losses, PrintedDesign::from_pnn(&pnn))
    };
    let (losses_a, design_a) = run();
    let (losses_b, design_b) = run();
    assert_eq!(losses_a, losses_b);
    assert_eq!(design_a, design_b);
}
