//! End-to-end smoke test of the experiment harness: a miniature Tab. II /
//! Tab. III pipeline over two datasets, exercising the same code paths as
//! the `table2`/`table3` binaries.

use pnc_bench::{headline_improvements, run_table2, summarize, Arm, Budget};
use printed_neuromorphic::artifacts;
use printed_neuromorphic::datasets::generators::{acute_inflammation, iris};
use std::sync::Arc;

#[test]
fn miniature_grid_produces_well_formed_tables() {
    let surrogate = Arc::new(artifacts::quick_surrogate().expect("quick surrogate"));
    let datasets = vec![acute_inflammation(), iris()];
    let budget = Budget {
        seeds: vec![1],
        max_epochs: 40,
        patience: 40,
        n_train_mc: 2,
        n_val_mc: 2,
        n_test: 10,
        mc_seed: 0,
        split_seed: 42,
    };

    let table2 = run_table2(&datasets, surrogate, &budget).expect("grid runs");
    assert_eq!(table2.rows.len(), 2);
    for row in &table2.rows {
        // The paper's 8-column layout, in order.
        assert_eq!(row.cells.len(), 8);
        let expected_arms = [
            (
                Arm {
                    learnable: false,
                    variation_aware: false,
                },
                0.05,
            ),
            (
                Arm {
                    learnable: false,
                    variation_aware: false,
                },
                0.10,
            ),
            (
                Arm {
                    learnable: false,
                    variation_aware: true,
                },
                0.05,
            ),
            (
                Arm {
                    learnable: false,
                    variation_aware: true,
                },
                0.10,
            ),
            (
                Arm {
                    learnable: true,
                    variation_aware: false,
                },
                0.05,
            ),
            (
                Arm {
                    learnable: true,
                    variation_aware: false,
                },
                0.10,
            ),
            (
                Arm {
                    learnable: true,
                    variation_aware: true,
                },
                0.05,
            ),
            (
                Arm {
                    learnable: true,
                    variation_aware: true,
                },
                0.10,
            ),
        ];
        for (cell, (arm, eps)) in row.cells.iter().zip(expected_arms) {
            assert_eq!(cell.arm, arm);
            assert!((cell.test_epsilon - eps).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&cell.stats.mean), "{:?}", cell.stats);
            assert!(cell.stats.std >= 0.0);
            assert_eq!(cell.stats.accuracies.len(), budget.n_test);
            // Variation-aware arms train at the tested level; nominal at 0.
            if arm.variation_aware {
                assert!((cell.train_epsilon - eps).abs() < 1e-12);
            } else {
                assert_eq!(cell.train_epsilon, 0.0);
            }
        }
    }

    let table3 = summarize(&table2);
    assert_eq!(table3.rows.len(), 4);
    let headline = headline_improvements(&table3);
    assert!(headline.accuracy_gain_10.is_finite());
    assert!(headline.std_reduction_10.is_finite());

    // Round trip the artifact the binaries exchange.
    let path = std::env::temp_dir().join("pnc_harness_smoke_table2.json");
    table2.save(&path).expect("saves");
    let back = pnc_bench::Table2::load(&path).expect("loads");
    assert_eq!(back.rows.len(), table2.rows.len());
    std::fs::remove_file(&path).ok();
}
