//! Characterize printed nonlinear circuits: simulate DC transfer curves with
//! the built-in SPICE substrate, fit the ptanh model of Eq. 2, and render
//! the family of characteristic curves (the content of Fig. 2 and the left
//! panel of Fig. 4).
//!
//! ```sh
//! cargo run --release --example characterize_circuit
//! ```

use printed_neuromorphic::fit::fit_ptanh;
use printed_neuromorphic::spice::circuits::{characteristic_curve, NonlinearCircuitParams};
use std::error::Error;

/// Renders several curves on one coarse ASCII canvas.
fn ascii_plot(curves: &[(String, Vec<(f64, f64)>)]) {
    const W: usize = 61;
    const H: usize = 17;
    let mut canvas = vec![vec![' '; W]; H];
    let marks = ['a', 'b', 'c', 'd', 'e'];
    for (k, (_, curve)) in curves.iter().enumerate() {
        for &(x, y) in curve {
            let col = ((x.clamp(0.0, 1.0)) * (W - 1) as f64).round() as usize;
            let row = ((1.0 - y.clamp(0.0, 1.0)) * (H - 1) as f64).round() as usize;
            canvas[row][col] = marks[k % marks.len()];
        }
    }
    println!("V_out (V)");
    for (r, row) in canvas.iter().enumerate() {
        let label = if r == 0 {
            "1.0 |"
        } else if r == H - 1 {
            "0.0 |"
        } else {
            "    |"
        };
        println!("{label}{}", row.iter().collect::<String>());
    }
    println!("    +{}", "-".repeat(W));
    println!("     0.0{}V_in (V){}1.0", " ".repeat(18), " ".repeat(18));
}

fn main() -> Result<(), Box<dyn Error>> {
    // A few points of the Tab. I design space, nominal first.
    let designs = [
        ("nominal", NonlinearCircuitParams::nominal()),
        (
            "steep (wide transistor, strong divider)",
            NonlinearCircuitParams {
                r1: 120.0,
                r2: 100.0,
                r3: 400_000.0,
                r4: 300_000.0,
                r5: 100_000.0,
                w: 800e-6,
                l: 10e-6,
            },
        ),
        (
            "shallow (weak divider)",
            NonlinearCircuitParams {
                r1: 400.0,
                r2: 60.0,
                r3: 100_000.0,
                r4: 60_000.0,
                r5: 150_000.0,
                w: 500e-6,
                l: 30e-6,
            },
        ),
        (
            "late transition",
            NonlinearCircuitParams {
                r1: 300.0,
                r2: 120.0,
                r3: 200_000.0,
                r4: 90_000.0,
                r5: 60_000.0,
                w: 600e-6,
                l: 25e-6,
            },
        ),
    ];

    let mut curves = Vec::new();
    println!(
        "simulating {} circuit designs and fitting Eq. 2 ...\n",
        designs.len()
    );
    for (mark, (name, params)) in ["a", "b", "c", "d"].iter().zip(&designs) {
        let curve = characteristic_curve(params, 81)?;
        let fit = fit_ptanh(&curve)?;
        println!(
            "[{mark}] {name}\n    ω = [R1={:.0}Ω R2={:.0}Ω R3={:.0}kΩ R4={:.0}kΩ R5={:.0}kΩ W={:.0}µm L={:.0}µm]",
            params.r1,
            params.r2,
            params.r3 / 1e3,
            params.r4 / 1e3,
            params.r5 / 1e3,
            params.w * 1e6,
            params.l * 1e6
        );
        println!(
            "    fitted η = [{:.3}, {:.3}, {:.3}, {:.3}], rmse {:.4} V",
            fit.curve.eta[0], fit.curve.eta[1], fit.curve.eta[2], fit.curve.eta[3], fit.rmse
        );
        curves.push((name.to_string(), curve));
    }

    println!("\ncharacteristic curves (cf. Fig. 2):\n");
    ascii_plot(&curves);
    Ok(())
}
