//! The full surrogate-modelling pipeline of Fig. 3: quasi Monte-Carlo
//! design-space sampling → SPICE simulation → ptanh extraction → training
//! the 13-layer regression network — then the parity check of Fig. 4
//! (right).
//!
//! ```sh
//! cargo run --release --example surrogate_pipeline [n_samples]
//! ```

use printed_neuromorphic::artifacts;
use printed_neuromorphic::linalg::stats;
use printed_neuromorphic::surrogate::{build_dataset, train_surrogate, DatasetConfig, TrainConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1500);

    println!("1. sampling {samples} design points (Sobol' QMC over Tab. I) and simulating ...");
    let data = build_dataset(&DatasetConfig {
        samples,
        sweep_points: 61,
    })?;
    let rmses: Vec<f64> = data.entries.iter().map(|e| e.fit_rmse).collect();
    println!(
        "   {} circuits characterized; ptanh fit rmse: mean {:.4} V, max {:.4} V",
        data.entries.len(),
        stats::mean(&rmses),
        stats::max(&rmses).unwrap_or(0.0),
    );
    let tally = data.failure_tally();
    if tally.total() > 0 {
        println!(
            "   {} points failed (build {}, sweep {}, fit {}); first: {}",
            tally.total(),
            tally.build,
            tally.sweep,
            tally.fit,
            data.failures
                .first()
                .map(|f| f.cause.as_str())
                .unwrap_or("-"),
        );
    }

    println!("2. training the 13-layer surrogate network (70/20/10 split) ...");
    let (model, report) = train_surrogate(&data, &TrainConfig::default())?;
    println!(
        "   {} epochs; mse train {:.5} / val {:.5} / test {:.5}",
        report.epochs_run, report.train_mse, report.val_mse, report.test_mse
    );
    println!(
        "   test R² (pooled over η components): {:.4}",
        report.test_r2
    );

    println!("3. parity check on a few test-style points (cf. Fig. 4 right):");
    println!("   {:>28} | {:>28}", "true η (fit)", "predicted η(ω)");
    for e in data.entries.iter().rev().take(5) {
        let pred = model.predict_eta(&e.omega);
        println!(
            "   [{:6.3} {:6.3} {:6.3} {:6.3}] | [{:6.3} {:6.3} {:6.3} {:6.3}]",
            e.eta[0], e.eta[1], e.eta[2], e.eta[3], pred[0], pred[1], pred[2], pred[3]
        );
    }

    // End-of-run metrics summary: how much SPICE/LM effort the pipeline
    // spent, and where points were lost (see docs/METRICS.md).
    let dir = artifacts::artifact_dir();
    std::fs::create_dir_all(&dir)?;
    let metrics_path = dir.join("surrogate_pipeline_metrics.json");
    printed_neuromorphic::obs::write_summary(&metrics_path)?;
    println!("metrics summary saved to {}", metrics_path.display());
    Ok(())
}
