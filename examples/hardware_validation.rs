//! Hardware-in-the-loop validation: after training, re-run inference at
//! circuit level — every crossbar solved exactly by modified nodal analysis,
//! every nonlinear circuit characterized by direct DC simulation of its
//! netlist — and measure the model-to-hardware gap a designer must budget
//! before printing.
//!
//! ```sh
//! cargo run --release --example hardware_validation
//! ```

use printed_neuromorphic::artifacts;
use printed_neuromorphic::datasets::generators::iris;
use printed_neuromorphic::pnn::hardware::HardwareSimulator;
use printed_neuromorphic::pnn::{
    accuracy, LabeledData, Pnn, PnnConfig, TrainConfig, Trainer, VariationModel,
};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let surrogate = Arc::new(artifacts::default_surrogate()?);
    let data = iris();
    let (train, val, test) = data.split(1);

    println!("training a bespoke pNN on {} ...", data.name);
    let mut pnn = Pnn::new(
        PnnConfig::for_dataset(data.num_features(), data.num_classes),
        surrogate,
    )?;
    Trainer::new(TrainConfig {
        variation: VariationModel::Uniform { epsilon: 0.05 },
        n_train_mc: 10,
        max_epochs: 300,
        patience: 120,
        ..TrainConfig::default()
    })
    .train(
        &mut pnn,
        LabeledData::new(&train.features, &train.labels)?,
        LabeledData::new(&val.features, &val.labels)?,
    )?;
    let test_d = LabeledData::new(&test.features, &test.labels)?;
    println!(
        "model test accuracy: {:.3}\n",
        accuracy(&pnn, test_d, None)?
    );

    let hw = HardwareSimulator::new();

    println!("per-circuit surrogate gap (simulated fit vs surrogate prediction):");
    println!("{:>24} | {:>24}", "simulated eta", "surrogate eta");
    for (fitted, predicted) in hw.circuit_etas(&pnn)? {
        println!(
            "[{:5.2} {:5.2} {:5.2} {:5.1}] | [{:5.2} {:5.2} {:5.2} {:5.1}]",
            fitted.eta[0],
            fitted.eta[1],
            fitted.eta[2],
            fitted.eta[3],
            predicted[0],
            predicted[1],
            predicted[2],
            predicted[3]
        );
    }

    println!("\nrunning circuit-level inference on the test set ...");
    let report = hw.model_hardware_gap(&pnn, &test.features)?;
    println!(
        "output-voltage gap: mean {:.4} V, max {:.4} V over {} samples",
        report.mean_voltage_gap, report.max_voltage_gap, report.samples
    );
    println!(
        "prediction agreement (model vs circuit level): {:.1} %",
        report.prediction_agreement * 100.0
    );
    println!(
        "\nThe remaining gap is the surrogate approximation error (assumption 2\n\
         of the pNN abstraction); the crossbar weighted sums themselves are\n\
         reproduced exactly by Kirchhoff's laws."
    );
    Ok(())
}
