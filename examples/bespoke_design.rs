//! Training **is** designing: train a pNN for a task and export the complete
//! printable design — crossbar conductances, negative-weight routing, and
//! the bespoke physical parameterization of every nonlinear circuit
//! (Fig. 5's output, ready for the printer).
//!
//! ```sh
//! cargo run --release --example bespoke_design [output.json]
//! ```

use printed_neuromorphic::artifacts;
use printed_neuromorphic::datasets::generators::acute_inflammation;
use printed_neuromorphic::pnn::{
    accuracy, LabeledData, Pnn, PnnConfig, PrintedDesign, TrainConfig, Trainer, VariationModel,
};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let surrogate = Arc::new(artifacts::default_surrogate()?);
    let data = acute_inflammation();
    let (train, val, test) = data.split(1);

    println!("designing a printed classifier for: {}", data.name);
    let mut pnn = Pnn::new(
        PnnConfig::for_dataset(data.num_features(), data.num_classes),
        surrogate,
    )?;
    Trainer::new(TrainConfig {
        variation: VariationModel::Uniform { epsilon: 0.05 },
        n_train_mc: 10,
        max_epochs: 400,
        patience: 150,
        ..TrainConfig::default()
    })
    .train(
        &mut pnn,
        LabeledData::new(&train.features, &train.labels)?,
        LabeledData::new(&val.features, &val.labels)?,
    )?;

    let test_acc = accuracy(&pnn, LabeledData::new(&test.features, &test.labels)?, None)?;
    println!("test accuracy of the design: {test_acc:.3}\n");

    let design = PrintedDesign::from_pnn(&pnn);
    assert!(design.is_feasible(), "exported design must satisfy Tab. I");
    println!("{design}");
    println!(
        "printed resistors in the crossbars: {}",
        design.printed_resistor_count()
    );

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, serde_json_string(&design)?)?;
        println!("design written to {path}");
    }
    Ok(())
}

fn serde_json_string(design: &PrintedDesign) -> Result<String, Box<dyn Error>> {
    // The facade crate does not re-export serde_json; go through the
    // Serialize impl with a tiny local helper.
    Ok(serde_json::to_string_pretty(design)?)
}
