//! Quickstart: train a bespoke printed neural network on Iris and measure
//! its robustness to printing variation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use printed_neuromorphic::artifacts;
use printed_neuromorphic::datasets::generators::iris;
use printed_neuromorphic::pnn::{
    accuracy, mc_evaluate, LabeledData, Pnn, PnnConfig, TrainConfig, Trainer, VariationModel,
};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The differentiable surrogate of the nonlinear circuits
    //    (characterized from the built-in SPICE substrate; cached on disk).
    println!("loading surrogate model of the printed nonlinear circuits...");
    let surrogate = Arc::new(artifacts::default_surrogate()?);

    // 2. A benchmark task with the paper's #input-3-#output topology.
    let data = iris();
    let (train, val, test) = data.split(1);
    println!(
        "dataset: {} ({} samples, {} features, {} classes)",
        data.name,
        data.len(),
        data.num_features(),
        data.num_classes
    );

    // 3. Variation-aware training with learnable nonlinear circuits —
    //    the paper's full method, at a 10 % printing-resolution budget.
    let epsilon = 0.10;
    let mut pnn = Pnn::new(
        PnnConfig::for_dataset(data.num_features(), data.num_classes),
        surrogate,
    )?;
    let report = Trainer::new(TrainConfig {
        variation: VariationModel::Uniform { epsilon },
        n_train_mc: 10,
        max_epochs: 400,
        patience: 150,
        ..TrainConfig::default()
    })
    .train(
        &mut pnn,
        LabeledData::new(&train.features, &train.labels)?,
        LabeledData::new(&val.features, &val.labels)?,
    )?;
    println!(
        "trained for {} epochs (best validation loss {:.4} at epoch {})",
        report.epochs_run, report.best_val_loss, report.best_epoch
    );

    // 4. Evaluate: nominal accuracy and Monte-Carlo robustness, the way
    //    Tab. II of the paper reports it.
    let test_data = LabeledData::new(&test.features, &test.labels)?;
    let nominal = accuracy(&pnn, test_data, None)?;
    let stats = mc_evaluate(
        &pnn,
        test_data,
        &VariationModel::Uniform { epsilon },
        100,
        42,
    )?;
    println!("test accuracy (nominal printing):     {nominal:.3}");
    println!(
        "test accuracy (100 MC draws @ ±{:.0}%):  {:.3} ± {:.3}",
        epsilon * 100.0,
        stats.mean,
        stats.std
    );
    Ok(())
}
