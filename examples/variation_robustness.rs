//! The paper's headline comparison in miniature: on one benchmark dataset,
//! compare the prior-work baseline (fixed nonlinear circuit, nominal
//! training) against the full method (learnable circuits + variation-aware
//! training) under printing variation.
//!
//! ```sh
//! cargo run --release --example variation_robustness [epsilon_percent]
//! ```

use printed_neuromorphic::artifacts;
use printed_neuromorphic::datasets::generators::seeds;
use printed_neuromorphic::pnn::{
    mc_evaluate, train_best_of_seeds, LabeledData, PnnConfig, TrainConfig, VariationModel,
};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let epsilon: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse::<f64>())
        .transpose()?
        .unwrap_or(10.0)
        / 100.0;

    let surrogate = Arc::new(artifacts::default_surrogate()?);
    let data = seeds();
    let (train, val, test) = data.split(1);
    let train_d = LabeledData::new(&train.features, &train.labels)?;
    let val_d = LabeledData::new(&val.features, &val.labels)?;
    let test_d = LabeledData::new(&test.features, &test.labels)?;
    println!(
        "dataset {} | ε = {:.0}% printing variation\n",
        data.name,
        epsilon * 100.0
    );

    let budget = TrainConfig {
        max_epochs: 400,
        patience: 150,
        n_train_mc: 10,
        ..TrainConfig::default()
    };

    let arms: [(&str, bool, bool); 4] = [
        ("baseline: fixed circuit, nominal training", false, false),
        ("ablation: fixed circuit, variation-aware", false, true),
        ("ablation: learnable circuit, nominal", true, false),
        ("full method: learnable + variation-aware", true, true),
    ];

    println!(
        "{:<45} {:>18}",
        "training setup",
        format!("acc @ ±{:.0}% (100 MC)", epsilon * 100.0)
    );
    for (name, learnable, variation_aware) in arms {
        let mut config = PnnConfig::for_dataset(data.num_features(), data.num_classes);
        if !learnable {
            config = config.with_fixed_nonlinearity();
        }
        let train_cfg = TrainConfig {
            lr_omega: if learnable { budget.lr_omega } else { 0.0 },
            variation: if variation_aware {
                VariationModel::Uniform { epsilon }
            } else {
                VariationModel::None
            },
            vary_nonlinear: learnable,
            ..budget
        };
        // Best-of-seeds by validation loss, as in Sec. IV-C of the paper.
        let (pnn, _) = train_best_of_seeds(
            &config,
            surrogate.clone(),
            &train_cfg,
            train_d,
            val_d,
            &[1, 2, 3],
        )?;
        let stats = mc_evaluate(&pnn, test_d, &VariationModel::Uniform { epsilon }, 100, 7)?;
        println!("{name:<45} {:>9.3} ± {:.3}", stats.mean, stats.std);
    }

    println!(
        "\nThe full method should have the highest mean and the smallest spread\n\
         (Tab. III of the paper reports +19–26 % accuracy and ~75 % spread\n\
         reduction over the baseline at the full training budget)."
    );
    Ok(())
}
