#!/usr/bin/env bash
# CI gate for the workspace's own static analyzer (see docs/LINTS.md):
#
#   1. `pnc-lint check` runs clean on the tree (ratchet baseline applied)
#      and regenerates artifacts/lint_report.json — which must match the
#      committed copy, so the report can never go stale.
#   2. The oracle registry in lint_baseline.json pins every required
#      frozen reference implementation (oracle-freeze's floor): the three
#      cross-backend agreement oracles plus the streaming-equivalence
#      anchors of DESIGN.md §17.
#   3. The check itself stays fast: under 10 s of wall time, so the lint
#      job never becomes the long pole.
#
#   cargo build -p pnc-lint   # (any profile; CI uses the debug build)
#   scripts/check_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

# --- 1. self-check + report staleness -----------------------------------
# Build first (untimed) so the wall-time budget below measures the
# analyze+report pass, not the compiler.
cargo build -q -p pnc-lint
start=$(date +%s%N)
cargo run -q -p pnc-lint -- check --baseline lint_baseline.json
end=$(date +%s%N)
elapsed_ms=$(( (end - start) / 1000000 ))

if ! git diff --exit-code -- artifacts/lint_report.json; then
    echo "STALE REPORT: artifacts/lint_report.json does not match the tree;" >&2
    echo "run 'cargo run -p pnc-lint -- check' and commit the result" >&2
    exit 1
fi

# --- 2. oracle registry completeness ------------------------------------
for oracle in "Matrix::matmul_reference" \
              "Graph::backward_reference" \
              "DcSolver::newton_dense" \
              "build_dataset_opts" \
              "characterize_point" \
              "StoreMeta::encode" \
              "StoreRecord::encode"; do
    if ! grep -q "$oracle" lint_baseline.json; then
        echo "ORACLE REGISTRY: required oracle '$oracle' is not pinned in" >&2
        echo "lint_baseline.json; run update-oracles --justify '<why>'" >&2
        exit 1
    fi
done

# --- 3. wall-time budget ------------------------------------------------
# The analyze+report pass (binary pre-built above) must stay under 10 s —
# the structural rules are supposed to be cheap token passes, not a type
# checker.
if [ "$elapsed_ms" -gt 10000 ]; then
    echo "LINT TOO SLOW: check took ${elapsed_ms} ms (budget 10000 ms)" >&2
    exit 1
fi

echo "check_lint: clean tree, fresh report, registry complete (${elapsed_ms} ms)"
