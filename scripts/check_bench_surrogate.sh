#!/usr/bin/env bash
# Assert that BENCH_surrogate.json parses, carries every key the
# EXPERIMENTS.md schema documents, and holds the three hard guarantees of
# the streaming dataset builder (DESIGN.md §17):
#
#   1. flat memory — peak RSS of the 10x-points build is at most 1.2x the
#      small build's (chunked streaming, O(chunk_points) memory);
#   2. kill/resume fidelity — a build truncated mid-chunk and resumed
#      finishes byte-identical to the uninterrupted build;
#   3. sample efficiency — at an equal SPICE budget, the committee-driven
#      (active) build trains a surrogate at least as accurate on a held-out
#      slab as the uniform Sobol' build.
#
# The companion metrics summary (BENCH_surrogate_metrics.json) must carry
# the process.peak_rss_bytes gauge. Run after the `surrogate_stream` bench:
#
#   cargo run --release -p pnc-bench --bin surrogate_stream -- --quick
#   scripts/check_bench_surrogate.sh [REPORT] [METRICS]
#
# With no arguments, checks BENCH_surrogate.json and
# BENCH_surrogate_metrics.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
report=${1:-BENCH_surrogate.json}
metrics=${2:-BENCH_surrogate_metrics.json}

if [ ! -f "$report" ]; then
    echo "MISSING REPORT: $report (run the surrogate_stream bench first)" >&2
    exit 1
fi
if [ ! -f "$metrics" ]; then
    echo "MISSING METRICS: $metrics (run the surrogate_stream bench first)" >&2
    exit 1
fi

python3 - "$report" "$metrics" <<'PY'
import json
import sys

report_path, metrics_path = sys.argv[1], sys.argv[2]
with open(report_path) as f:
    report = json.load(f)
with open(metrics_path) as f:
    metrics = json.load(f)

failures = []
number = (int, float)


def need(obj, key, where, kind):
    if key not in obj:
        failures.append(f"{where}: missing key '{key}'")
    elif not isinstance(obj[key], kind):
        failures.append(f"{where}.{key}: expected {kind}, got {type(obj[key]).__name__}")


need(report, "machine_threads", "report", int)
need(report, "quick", "report", bool)
need(report, "chunk_points", "report", int)
need(report, "sweep_points", "report", int)

need(report, "memory", "report", dict)
memory = report.get("memory", {})
for phase in ("small", "large"):
    need(memory, phase, "memory", dict)
    build = memory.get(phase, {})
    where = f"memory.{phase}"
    for key in ("points", "entries", "failures", "chunks", "peak_rss_bytes"):
        need(build, key, where, int)
    need(build, "points_per_s", where, number)
    if isinstance(build.get("points_per_s"), number) and build["points_per_s"] <= 0:
        failures.append(f"{where}.points_per_s: must be positive")
for key in ("rss_ratio", "rss_ratio_bar"):
    need(memory, key, "memory", number)

need(report, "resume", "report", dict)
resume = report.get("resume", {})
for key in ("truncated_bytes", "resumed_records", "discarded_bytes"):
    need(resume, key, "resume", int)
need(resume, "bit_identical", "resume", bool)

need(report, "sampling", "report", dict)
sampling = report.get("sampling", {})
for key in ("budget_points", "holdout_points"):
    need(sampling, key, "sampling", int)
for key in ("uniform_rmse", "active_rmse", "active_vs_uniform"):
    need(sampling, key, "sampling", number)

# --- Hard bar 1: flat memory across a 10x size increase. ---
small = memory.get("small", {})
large = memory.get("large", {})
if isinstance(small.get("points"), int) and isinstance(large.get("points"), int):
    if large["points"] < 10 * small["points"]:
        failures.append(
            f"memory: large build ({large['points']} points) is not 10x the "
            f"small build ({small['points']} points)"
        )
ratio = memory.get("rss_ratio")
bar = memory.get("rss_ratio_bar")
if isinstance(ratio, number) and isinstance(bar, number):
    if not (0 < ratio <= bar):
        failures.append(
            f"memory.rss_ratio: {ratio:.3f} exceeds the {bar} bar — streaming "
            "memory is not flat in the total point count"
        )

# --- Hard bar 2: kill/resume byte fidelity. ---
if resume.get("bit_identical") is not True:
    failures.append(
        "resume.bit_identical: a truncated-and-resumed build must finish "
        "byte-identical to the uninterrupted build"
    )
if isinstance(resume.get("truncated_bytes"), int) and resume["truncated_bytes"] <= 0:
    failures.append("resume.truncated_bytes: the simulated kill removed nothing")

# --- Hard bar 3: active sampling wins at an equal budget. ---
uniform_rmse = sampling.get("uniform_rmse")
active_rmse = sampling.get("active_rmse")
if isinstance(uniform_rmse, number) and isinstance(active_rmse, number):
    if not (active_rmse <= uniform_rmse):
        failures.append(
            f"sampling: active RMSE {active_rmse:.4f} > uniform RMSE "
            f"{uniform_rmse:.4f} at an equal budget — uncertainty-driven "
            "sampling must not lose to uniform"
        )
if isinstance(sampling.get("holdout_points"), int) and sampling["holdout_points"] < 100:
    failures.append(
        f"sampling.holdout_points: {sampling['holdout_points']} < 100 — the "
        "holdout is too small to rank the competitors"
    )

# --- The metrics summary must carry the gauge and the stream counters. ---
gauges = metrics.get("gauges")
if not isinstance(gauges, dict):
    failures.append("metrics: missing 'gauges' object")
else:
    rss = gauges.get("process.peak_rss_bytes")
    if not isinstance(rss, int) or rss <= 0:
        failures.append(
            "metrics.gauges['process.peak_rss_bytes']: expected a positive "
            f"recorded value, got {rss!r}"
        )
counters = metrics.get("counters", {})
for name in ("surrogate.stream.chunks", "surrogate.stream.points"):
    if not isinstance(counters.get(name), int) or counters.get(name, 0) <= 0:
        failures.append(f"metrics.counters['{name}']: expected a positive count")

if failures:
    for line in failures:
        print(f"BENCH SCHEMA: {line}", file=sys.stderr)
    sys.exit(1)

print(
    f"{report_path}: schema ok "
    f"(RSS ratio {ratio:.3f} <= {bar} across {small.get('points')} -> "
    f"{large.get('points')} points; resume bit-identical; active/uniform "
    f"RMSE {sampling.get('active_vs_uniform'):.3f})"
)
PY
