#!/usr/bin/env bash
# Assert that BENCH_kernels.json parses and carries every key the
# EXPERIMENTS.md schema documents. Run after the `kernels` bench bin:
#
#   cargo run --release -p pnc-bench --bin kernels -- --quick
#   scripts/check_bench_kernels.sh [REPORT]
#
# With no argument, checks BENCH_kernels.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
report=${1:-BENCH_kernels.json}

if [ ! -f "$report" ]; then
    echo "MISSING REPORT: $report (run the kernels bench first)" >&2
    exit 1
fi

python3 - "$report" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

failures = []


def need(obj, key, where, kind):
    if key not in obj:
        failures.append(f"{where}: missing key '{key}'")
    elif not isinstance(obj[key], kind):
        failures.append(f"{where}.{key}: expected {kind}, got {type(obj[key]).__name__}")


number = (int, float)
need(report, "machine_threads", "report", int)
need(report, "machine_logical_threads", "report", int)

need(report, "matmul", "report", dict)
matmul = report.get("matmul", {})
need(matmul, "block", "matmul", int)
need(matmul, "parallel_threads", "matmul", int)
need(matmul, "results", "matmul", list)
if not matmul.get("results"):
    failures.append("matmul.results: must have at least one size")
single_core = report.get("machine_threads") == 1
for i, row in enumerate(matmul.get("results", [])):
    for key in ("size", "reference_gflops", "blocked_gflops"):
        need(row, key, f"matmul.results[{i}]", number)
    # parallel_gflops is null on single-physical-core machines (a 1-thread
    # "parallel" number would only measure pool overhead) and a number
    # otherwise.
    where = f"matmul.results[{i}]"
    if "parallel_gflops" not in row:
        failures.append(f"{where}: missing key 'parallel_gflops'")
    elif row["parallel_gflops"] is None:
        if not single_core:
            failures.append(
                f"{where}.parallel_gflops: null but machine_threads > 1"
            )
    elif not isinstance(row["parallel_gflops"], number):
        failures.append(
            f"{where}.parallel_gflops: expected number or null, "
            f"got {type(row['parallel_gflops']).__name__}"
        )
    elif single_core:
        failures.append(
            f"{where}.parallel_gflops: must be null on a single-physical-core "
            "machine"
        )

need(report, "epoch", "report", dict)
epoch = report.get("epoch", {})
for key in ("batch", "n_mc", "epochs"):
    need(epoch, key, "epoch", int)
for key in ("naive_wall_ms", "reuse_wall_ms", "speedup"):
    need(epoch, key, "epoch", number)

need(report, "newton", "report", dict)
newton = report.get("newton", {})
for key in ("sweep_points", "full_iterations", "reuse_iterations", "reuse_factorizations"):
    need(newton, key, "newton", int)
for key in ("iterations_per_factorization", "full_points_per_s", "reuse_points_per_s"):
    need(newton, key, "newton", number)

if failures:
    for line in failures:
        print(f"BENCH SCHEMA: {line}", file=sys.stderr)
    sys.exit(1)

print(
    f"{path}: schema ok "
    f"(epoch speedup {epoch['speedup']:.2f}x, "
    f"{newton['iterations_per_factorization']:.2f} iterations/factorization)"
)
PY
