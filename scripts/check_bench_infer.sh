#!/usr/bin/env bash
# Assert that BENCH_infer.json parses, carries every key the EXPERIMENTS.md
# schema documents, and holds the two hard guarantees of the compiled plan:
# the f64 plan is bit-identical to the graph forward and at least 3x faster
# on single-sample inference. Run after the `infer` bench bin:
#
#   cargo run --release -p pnc-bench --bin infer -- --quick
#   scripts/check_bench_infer.sh [REPORT]
#
# With no argument, checks BENCH_infer.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
report=${1:-BENCH_infer.json}

if [ ! -f "$report" ]; then
    echo "MISSING REPORT: $report (run the infer bench first)" >&2
    exit 1
fi

python3 - "$report" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

failures = []


def need(obj, key, where, kind):
    if key not in obj:
        failures.append(f"{where}: missing key '{key}'")
    elif not isinstance(obj[key], kind):
        failures.append(f"{where}.{key}: expected {kind}, got {type(obj[key]).__name__}")


number = (int, float)
need(report, "machine_threads", "report", int)
need(report, "bit_identical_f64", "report", bool)

need(report, "network", "report", dict)
network = report.get("network", {})
need(network, "dataset", "network", str)
for key in ("in_dim", "out_dim", "layers", "train_epochs"):
    need(network, key, "network", int)

need(report, "single_sample", "report", dict)
single = report.get("single_sample", {})
need(single, "reps", "single_sample", int)
for key in (
    "graph_p50_us",
    "graph_p99_us",
    "plan_f64_p50_us",
    "plan_f64_p99_us",
    "plan_f32_p50_us",
    "plan_f32_p99_us",
    "plan_q16_p50_us",
    "plan_q16_p99_us",
    "speedup_f64_vs_graph",
):
    need(single, key, "single_sample", number)

need(report, "batched", "report", dict)
batched = report.get("batched", {})
need(batched, "batch", "batched", int)
for key in (
    "graph_inferences_per_s",
    "plan_f64_inferences_per_s",
    "plan_f32_inferences_per_s",
    "plan_q16_inferences_per_s",
):
    need(batched, key, "batched", number)

# The two hard acceptance bars, beyond pure schema shape.
if report.get("bit_identical_f64") is not True:
    failures.append("bit_identical_f64: f64 plan must reproduce the graph bits")
speedup = single.get("speedup_f64_vs_graph")
if isinstance(speedup, number) and speedup < 3.0:
    failures.append(
        f"single_sample.speedup_f64_vs_graph: {speedup:.2f} < 3.0 minimum"
    )

if failures:
    for line in failures:
        print(f"BENCH SCHEMA: {line}", file=sys.stderr)
    sys.exit(1)

print(
    f"{path}: schema ok "
    f"(f64 plan {single['speedup_f64_vs_graph']:.2f}x vs graph, bit-identical)"
)
PY
