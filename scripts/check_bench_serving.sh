#!/usr/bin/env bash
# Assert that BENCH_serving.json parses, carries every key the
# EXPERIMENTS.md schema documents, and holds the three hard guarantees of
# the serving layer: every served response was bit-identical to a direct
# single-sample plan call, the framed-TCP hop preserved those bits, and
# batched dispatch was at least as fast as one-request-at-a-time dispatch
# under the same load. Run after the `serving` bench bin:
#
#   cargo run --release -p pnc-bench --bin serving -- --quick
#   scripts/check_bench_serving.sh [REPORT]
#
# With no argument, checks BENCH_serving.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
report=${1:-BENCH_serving.json}

if [ ! -f "$report" ]; then
    echo "MISSING REPORT: $report (run the serving bench first)" >&2
    exit 1
fi

python3 - "$report" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

failures = []


def need(obj, key, where, kind):
    if key not in obj:
        failures.append(f"{where}: missing key '{key}'")
    elif not isinstance(obj[key], kind):
        failures.append(f"{where}.{key}: expected {kind}, got {type(obj[key]).__name__}")


def check_phase(phase, where):
    for key in ("client_threads", "requests", "completed", "rejected"):
        need(phase, key, where, int)
    for key in ("requests_per_s", "p50_us", "p99_us"):
        need(phase, key, where, number)
    if isinstance(phase.get("completed"), int) and phase.get("completed", 0) <= 0:
        failures.append(f"{where}.completed: no request completed")


number = (int, float)
need(report, "machine_threads", "report", int)
need(report, "bit_identical", "report", bool)
need(report, "tcp_round_trip", "report", bool)
need(report, "batching_speedup", "report", number)

need(report, "model", "report", dict)
model = report.get("model", {})
need(model, "dataset", "model", str)
need(model, "precision", "model", str)
for key in ("in_dim", "out_dim"):
    need(model, key, "model", int)

need(report, "config", "report", dict)
config = report.get("config", {})
for key in ("max_batch", "max_wait_us", "queue_capacity", "worker_threads"):
    need(config, key, "config", int)

need(report, "serial", "report", dict)
check_phase(report.get("serial", {}), "serial")

need(report, "load", "report", list)
load = report.get("load", [])
if not load:
    failures.append("load: at least one loaded phase is required")
for i, phase in enumerate(load):
    if isinstance(phase, dict):
        check_phase(phase, f"load[{i}]")
    else:
        failures.append(f"load[{i}]: expected an object")

# The three hard acceptance bars, beyond pure schema shape.
if report.get("bit_identical") is not True:
    failures.append(
        "bit_identical: served responses must match direct single-sample plan bits"
    )
if report.get("tcp_round_trip") is not True:
    failures.append("tcp_round_trip: the framed-TCP hop must preserve exact f64 bits")
speedup = report.get("batching_speedup")
if isinstance(speedup, number) and speedup < 1.0:
    failures.append(
        f"batching_speedup: {speedup:.2f} < 1.0 — batched dispatch must not lose "
        "to one-request-at-a-time under the same load"
    )

if failures:
    for line in failures:
        print(f"BENCH SCHEMA: {line}", file=sys.stderr)
    sys.exit(1)

print(
    f"{path}: schema ok "
    f"(batching {speedup:.2f}x vs one-at-a-time, bit-identical, tcp exact)"
)
PY
