#!/usr/bin/env bash
# Assert that BENCH_spice.json parses, carries every key the EXPERIMENTS.md
# schema documents, and holds the two hard guarantees of the solver-backend
# subsystem: every backend agreed with the dense-LU oracle in situ (sparse
# to linear-solver precision, coordinate descent within its documented
# residual-implied bound — see docs/SOLVERS.md), and on the headline
# crossbar-scale circuit (>= 10x the Fig. 1 node count) dense LU was at
# least 5x slower than sparse LU. Run after the `spice_backends` bench bin:
#
#   cargo run --release -p pnc-bench --bin spice_backends -- --quick
#   scripts/check_bench_spice.sh [REPORT]
#
# With no argument, checks BENCH_spice.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
report=${1:-BENCH_spice.json}

if [ ! -f "$report" ]; then
    echo "MISSING REPORT: $report (run the spice_backends bench first)" >&2
    exit 1
fi

python3 - "$report" <<'PY'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

failures = []
number = (int, float)


def need(obj, key, where, kind):
    if key not in obj:
        failures.append(f"{where}: missing key '{key}'")
    elif not isinstance(obj[key], kind):
        failures.append(f"{where}.{key}: expected {kind}, got {type(obj[key]).__name__}")


need(report, "machine_threads", "report", int)
need(report, "quick", "report", bool)
for key in ("sparse_agreement_tol", "cd_agreement_tol", "worst_sparse_dev", "worst_cd_dev"):
    need(report, key, "report", number)

need(report, "circuits", "report", list)
circuits = report.get("circuits", [])
if not circuits:
    failures.append("circuits: at least one measured circuit is required")
families = set()
for i, c in enumerate(circuits):
    where = f"circuits[{i}]"
    if not isinstance(c, dict):
        failures.append(f"{where}: expected an object")
        continue
    for key in ("family", "label"):
        need(c, key, where, str)
    need(c, "nodes", where, int)
    for key in ("dense_solves_per_s", "sparse_solves_per_s", "sparse_max_dev"):
        need(c, key, where, number)
        if isinstance(c.get(key), number) and c[key] < 0:
            failures.append(f"{where}.{key}: negative")
    # Nullable coordinate-descent entries: present together or null together.
    for key in ("cd_solves_per_s", "cd_max_dev"):
        if key not in c:
            failures.append(f"{where}: missing key '{key}'")
        elif c[key] is not None and not isinstance(c[key], number):
            failures.append(f"{where}.{key}: expected number or null")
    families.add(c.get("family"))
for family in ("ladder", "crossbar"):
    if family not in families:
        failures.append(f"circuits: no '{family}' family entry")

need(report, "headline", "report", dict)
headline = report.get("headline", {})
need(headline, "label", "headline", str)
need(headline, "nodes", "headline", int)
for key in ("dense_solves_per_s", "sparse_solves_per_s", "dense_vs_sparse_slowdown"):
    need(headline, key, "headline", number)

if "crossover_nodes" not in report:
    failures.append("report: missing key 'crossover_nodes'")
elif report["crossover_nodes"] is not None and not isinstance(report["crossover_nodes"], int):
    failures.append("report.crossover_nodes: expected int or null")

# The hard acceptance bars, beyond pure schema shape.
nodes = headline.get("nodes")
if isinstance(nodes, int) and nodes < 60:
    failures.append(
        f"headline.nodes: {nodes} < 60 — the headline circuit must be "
        "crossbar-scale (>= 10x the Fig. 1 node count)"
    )
slowdown = headline.get("dense_vs_sparse_slowdown")
if isinstance(slowdown, number) and slowdown < 5.0:
    failures.append(
        f"headline.dense_vs_sparse_slowdown: {slowdown:.2f} < 5.0 — dense LU "
        "must be at least 5x slower than sparse LU at crossbar scale"
    )
sparse_tol = report.get("sparse_agreement_tol")
sparse_dev = report.get("worst_sparse_dev")
if isinstance(sparse_tol, number) and isinstance(sparse_dev, number):
    if sparse_dev >= sparse_tol:
        failures.append(
            f"worst_sparse_dev: {sparse_dev:.3e} >= tol {sparse_tol:.1e} — "
            "sparse LU drifted from the dense oracle"
        )
cd_tol = report.get("cd_agreement_tol")
cd_dev = report.get("worst_cd_dev")
if isinstance(cd_tol, number) and isinstance(cd_dev, number):
    if cd_dev >= cd_tol:
        failures.append(
            f"worst_cd_dev: {cd_dev:.3e} >= tol {cd_tol:.1e} — coordinate "
            "descent drifted beyond its documented bound"
        )
if not any(
    isinstance(c, dict) and c.get("cd_max_dev") is not None for c in circuits
):
    failures.append(
        "circuits: coordinate descent never ran — at least one circuit must "
        "carry a non-null cd_max_dev"
    )

if failures:
    for line in failures:
        print(f"BENCH SCHEMA: {line}", file=sys.stderr)
    sys.exit(1)

print(
    f"{path}: schema ok "
    f"(headline {headline.get('label')}: {nodes} nodes, dense {slowdown:.1f}x "
    f"slower than sparse; worst devs sparse {sparse_dev:.2e} cd {cd_dev:.2e})"
)
PY
