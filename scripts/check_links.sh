#!/usr/bin/env bash
# Check that relative markdown links in the top-level docs resolve to real
# files. External (http/https/mailto) links and pure #anchors are skipped;
# a trailing #section on a relative link is stripped before the check.
#
#   scripts/check_links.sh [FILE ...]
#
# With no arguments, checks the documentation set that CI guards.
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md DESIGN.md ISSUE.md EXPERIMENTS.md ROADMAP.md CHANGELOG.md docs/METRICS.md docs/LINTS.md docs/SOLVERS.md)
fi

status=0
for file in "${files[@]}"; do
    if [ ! -f "$file" ]; then
        echo "MISSING FILE: $file" >&2
        status=1
        continue
    fi
    dir=$(dirname "$file")
    # Inline markdown links: [text](target). One match per line is enough to
    # catch drift; multiline links are not used in this repository.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN LINK: $file -> $target" >&2
            status=1
        fi
    done < <(grep -oE '\]\(([^)]+)\)' "$file" | sed -E 's/^\]\((.*)\)$/\1/')
done

if [ "$status" -ne 0 ]; then
    echo "link check failed" >&2
else
    echo "link check OK (${#files[@]} files)"
fi
exit "$status"
