//! Offline vendored stand-in for the `proptest` crate (API subset).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! `pat in strategy` arguments, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` assertion macros.
//!
//! Cases are generated from a per-case deterministic seed (so failures
//! reproduce run-to-run); there is no shrinking — a failure reports the
//! case index and seed instead of a minimized input.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob-import surface, matching `proptest::prelude::*` usage.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Generates a value, builds a dependent strategy from it with `f`, and
    /// draws from that.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { base: self, f }
    }
}

/// Adaptor returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Adaptor returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod bool {
    //! Boolean strategies.
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean with equal probability.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for a `Vec` of independently generated elements.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-loop driver used by the [`proptest!`](crate::proptest) macro.
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; `ProptestConfig` in the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config differing from default only in the case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejected the input; the case is skipped.
        Reject(String),
    }

    /// Base offset mixed into per-case seeds, chosen arbitrarily but fixed
    /// so every run regenerates the same cases.
    const SEED_BASE: u64 = 0x70_72_6F_70_74_65_73_74; // "proptest"

    /// Runs `test` on `config.cases` generated inputs; panics on the first
    /// failure with the case index and seed.
    pub fn run<S, F>(config: &Config, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = 100_000 + u64::from(config.cases) * 16;
        let mut case: u64 = 0;
        while passed < config.cases {
            let seed = SEED_BASE.wrapping_add(case);
            case += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest: too many prop_assume! rejections \
                         ({rejected} after {passed} passing cases)"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest case {case} failed (seed {seed:#x}, \
                         {passed} cases passed before it):\n{message}"
                    );
                }
            }
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Grammar (subset of real proptest): an optional
/// `#![proptest_config(expr)]` header, then one or more functions of the
/// form `fn name(pat in strategy, ...) { body }` each carrying its own
/// outer attributes (doc comments, `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run(&config, &strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first so comparison-shaped conditions don't trip
        // `clippy::neg_cmp_op_on_partial_ord` at every call site.
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Skips the current case (without failing the test) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10).prop_flat_map(|n| (n..n + 1, -1.0..1.0f64))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            n in 1usize..8,
            x in -2.0..2.0f64,
            flag in crate::bool::ANY,
            v in crate::collection::vec(0.0..1.0f64, 3..9),
        ) {
            prop_assert!((1..8).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!((3..9).contains(&v.len()));
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }

        #[test]
        fn flat_map_dependency((n, x) in pair()) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(x.abs() <= 1.0);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn inclusive_ranges(d in 1usize..=4) {
            prop_assert!((1..=4).contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run(
            &crate::test_runner::Config::with_cases(16),
            &(0usize..100),
            |n| {
                crate::prop_assert!(n < 1_000_000); // passes
                crate::prop_assert!(n == usize::MAX, "forced failure on {n}");
                Ok(())
            },
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(-5.0..5.0f64, 4..12);
        let draw = |seed| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            strat.generate(&mut rng)
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
