//! Offline vendored stand-in for the `criterion` crate (API subset).
//!
//! Implements the surface the workspace benches use: [`Criterion`] with
//! `sample_size`, [`Criterion::bench_function`] handing a [`Bencher`] to a
//! closure that calls [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is honest wall-clock timing —
//! per-sample iteration counts are calibrated, then `sample_size` samples
//! are taken and mean / median / min reported — but there is none of real
//! criterion's statistical machinery (no outlier analysis, no baselines,
//! no HTML reports).

use std::time::{Duration, Instant};

/// Target wall time for one calibrated sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Sampling for one benchmark stops early past this budget.
const MAX_BENCH_TIME: Duration = Duration::from_secs(10);

/// Re-export for drop-in compatibility with `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, sample_size: usize) -> Self {
        assert!(sample_size >= 2, "sample_size must be at least 2");
        self.sample_size = sample_size;
        self
    }

    /// Runs one benchmark: calibrates an iteration count, takes samples,
    /// and prints mean / median / min per-iteration times.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration: one iteration, to size the per-sample batch.
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let iterations = (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000);
        bencher.iterations = iterations as u64;

        let started = Instant::now();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
            if started.elapsed() > MAX_BENCH_TIME {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        println!(
            "{id:<50} mean {:>12} median {:>12} min {:>12} ({} samples x {} iters)",
            format_time(mean),
            format_time(median),
            format_time(samples[0]),
            samples.len(),
            bencher.iterations,
        );
        self
    }
}

/// Times the routine handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Renders seconds with an auto-selected unit, criterion-style.
fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} us", seconds * 1e6)
    } else {
        format!("{:.2} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u64;
        c.bench_function("smoke/sum_to_100", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            runs += 1;
        });
        // Calibration pass + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" us"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }

    mod group_macros {
        use crate::Criterion;

        fn target_a(c: &mut Criterion) {
            c.bench_function("macro/a", |b| b.iter(|| 1 + 1));
        }

        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(3);
            targets = target_a
        }

        #[test]
        fn named_group_compiles_and_runs() {
            benches();
        }
    }
}
