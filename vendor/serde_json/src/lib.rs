//! Offline vendored stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] data model to JSON text and
//! parses JSON text back, covering the workspace's API surface:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//!
//! Floats are written with Rust's shortest round-tripping representation
//! (`{}` formatting), so `f64` values survive a save/load cycle bit-for-bit
//! apart from non-finite values, which JSON cannot represent and which are
//! written as `null` (read back as NaN).

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` signature matches
/// real `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON with 2-space indentation.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` signature matches
/// real `serde_json`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a data-model mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display for f64 is the shortest string that parses
                // back to the same bits.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    Value::U64(i as u64)
                } else {
                    Value::I64(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unexpected end of string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::F64(1.5), Value::Null, Value::Bool(true)]),
            ),
            ("c".to_string(), Value::Str("x\"y\\z\n".to_string())),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[
            0.1,
            -1.0 / 3.0,
            std::f64::consts::PI,
            1e-300,
            2.2250738585072014e-308,
            123_456_789.123_456_79,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn integers_keep_exact_values() {
        let text = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
        let text = to_string(&i64::MIN).unwrap();
        let back: i64 = from_str(&text).unwrap();
        assert_eq!(back, i64::MIN);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let text = to_string(&f64::INFINITY).unwrap();
        assert_eq!(text, "null");
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
