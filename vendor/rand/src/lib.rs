//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides the exact surface this workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over float and
//! integer ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than real `StdRng` (ChaCha12), which is fine: the workspace never
//! depends on a specific stream, only on determinism in the seed.

use std::ops::{Range, RangeInclusive};

/// Types that produce randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draws one value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        // Scale by 2^53 - 1 so both endpoints are reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Multiply-shift rejection-free mapping is fine here: spans
                // are tiny relative to 2^64, so bias is negligible for
                // simulation purposes.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + offset as u128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as u128 - lo as u128) + 1;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as u128 + offset as u128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i32, i64);

/// Random-number generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&x| x == 0) {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            StdRng::seed_from_u64(7).gen_range(0.0..1.0),
            c.gen_range(0.0..1.0)
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&y));
            let n = rng.gen_range(0..10usize);
            assert!(n < 10);
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01, "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(4));
        b.shuffle(&mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut c: Vec<u32> = (0..50).collect();
        c.shuffle(&mut StdRng::seed_from_u64(5));
        assert_ne!(a, c);
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }
}
