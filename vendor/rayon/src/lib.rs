//! Offline vendored stand-in for the `rayon` crate (API subset).
//!
//! Backed by [`std::thread::scope`]: a parallel iterator is an indexed
//! recipe (`length` + `eval(i)`); collection splits the index space into
//! contiguous chunks, evaluates each chunk on its own scoped thread, and
//! concatenates the chunk results **in index order**. Output is therefore
//! bit-identical to the serial evaluation regardless of thread count —
//! a stronger guarantee than real rayon's `collect`, and one the
//! workspace's determinism tests rely on.
//!
//! Thread-count resolution, strongest first:
//! 1. inside a worker thread spawned by this crate → 1 (nested
//!    parallelism runs serial instead of oversubscribing),
//! 2. a [`ThreadPool::install`] scope on the current thread,
//! 3. a global pool from [`ThreadPoolBuilder::build_global`],
//! 4. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Glob-import surface, matching `rayon::prelude::*` usage.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

thread_local! {
    /// Per-thread override: 0 = unset, otherwise the forced thread count.
    static CURRENT: Cell<usize> = const { Cell::new(0) };
}

/// Global pool size from `build_global`: 0 = unset.
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

/// The number of threads a parallel call issued right now would use.
pub fn current_num_threads() -> usize {
    let cur = CURRENT.with(Cell::get);
    if cur != 0 {
        return cur;
    }
    let global = GLOBAL.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// An indexed parallel computation: `length()` items, item `i` produced by
/// `eval(i)`. `&self` evaluation (plus `Sync`) is what lets chunks run on
/// scoped threads concurrently.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn length(&self) -> usize;

    /// Produces item `i`. Must be safe to call concurrently for distinct `i`.
    fn eval(&self, index: usize) -> Self::Item;

    /// Lazily applies `f` to every item.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Evaluates everything in parallel and gathers the results in index
    /// order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Runs the iterator to completion and builds `Self`.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        run_in_order(&iter)
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<P: ParallelIterator<Item = Result<T, E>>>(iter: P) -> Self {
        // Evaluate every item (no short-circuit across threads), then
        // surface the first error by index — deterministic in the input,
        // not in thread timing.
        run_in_order(&iter).into_iter().collect()
    }
}

/// Evaluates all items of `iter`, fanning contiguous index chunks out over
/// scoped threads, and returns them in index order.
fn run_in_order<P: ParallelIterator>(iter: &P) -> Vec<P::Item> {
    let n = iter.length();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(|i| iter.eval(i)).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            handles.push(scope.spawn(move || {
                // Workers run nested parallel calls serially.
                CURRENT.with(|c| c.set(1));
                (start..end).map(|i| iter.eval(i)).collect::<Vec<_>>()
            }));
            start = end;
        }
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Lazy map adaptor returned by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn length(&self) -> usize {
        self.base.length()
    }

    fn eval(&self, index: usize) -> R {
        (self.f)(self.base.eval(index))
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on collections, yielding references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T, C> IntoParallelRefIterator<'a> for C
where
    C: 'a + ?Sized,
    &'a C: IntoParallelIterator<Item = &'a T>,
    T: Sync + 'a,
{
    type Item = &'a T;
    type Iter = <&'a C as IntoParallelIterator>::Iter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn length(&self) -> usize {
        self.slice.len()
    }

    fn eval(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `start..end`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn length(&self) -> usize {
        self.len
    }

    fn eval(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this stub,
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count = automatic).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count; 0 means automatic.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.resolved(),
        })
    }

    /// Installs the configuration as the process-global default.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL.store(self.resolved(), Ordering::Relaxed);
        Ok(())
    }

    fn resolved(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// A handle fixing the thread count for parallel calls made under
/// [`ThreadPool::install`]. Threads are spawned per call (scoped), not
/// pooled — same observable behavior, simpler lifetime story.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with parallel calls on this thread bounded to this pool's
    /// thread count.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT.with(Cell::get));
        CURRENT.with(|c| c.set(self.num_threads));
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (10..20).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out, (11..21).collect::<Vec<_>>());
        let empty: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn result_collect_reports_first_error_by_index() {
        let input: Vec<i32> = (0..100).collect();
        let out: Result<Vec<i32>, String> = input
            .par_iter()
            .map(|&x| {
                if x == 7 || x == 90 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out, Err("bad 7".to_string()));
        let ok: Result<Vec<i32>, String> = input.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap(), input);
    }

    #[test]
    fn identical_across_thread_counts() {
        let input: Vec<u64> = (0..257).collect();
        let work = |pool_threads: usize| -> Vec<f64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(pool_threads)
                .build()
                .unwrap();
            pool.install(|| input.par_iter().map(|&x| (x as f64).sqrt().sin()).collect())
        };
        let serial = work(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(serial, work(threads), "threads = {threads}");
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(super::current_num_threads(), 3));
        assert_ne!(super::current_num_threads(), 0);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let _: Vec<usize> = (0..64)
                .into_par_iter()
                .map(|i| {
                    if i == 33 {
                        panic!("worker boom");
                    }
                    i
                })
                .collect();
        });
    }
}
