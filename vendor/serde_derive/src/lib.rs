//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). The parser extracts exactly what code
//! generation needs — item kind, name, field names / arities, enum variant
//! shapes — and never has to understand Rust types: serialization calls
//! trait methods on field references, and deserialization lets the struct
//! literal drive type inference.
//!
//! Supported shapes (everything this workspace derives):
//! - named-field structs,
//! - tuple structs (newtype structs serialize transparently),
//! - enums with unit, struct, and tuple variants (externally tagged).
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item under derive.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skips `#[...]` attributes (doc comments arrive in this form too).
    fn skip_attributes(&mut self) {
        while self.is_punct('#') {
            self.next();
            // The bracketed attribute body.
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.next();
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`, etc.
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("serde derive: expected identifier, got {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();

    let kind = c.expect_ident()?;
    match kind.as_str() {
        "struct" => {
            let name = c.expect_ident()?;
            if c.is_punct('<') {
                return Err(format!(
                    "serde derive: generic struct `{name}` is not supported by the vendored derive"
                ));
            }
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => {
                    return Err(format!(
                        "serde derive: unexpected token after struct name: {other:?}"
                    ))
                }
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let name = c.expect_ident()?;
            if c.is_punct('<') {
                return Err(format!(
                    "serde derive: generic enum `{name}` is not supported by the vendored derive"
                ));
            }
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde derive: expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!(
            "serde derive: only structs and enums are supported, got `{other}`"
        )),
    }
}

/// Parses `name: Type, ...`, tracking `<...>` depth so commas inside
/// generic arguments don't split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        fields.push(c.expect_ident()?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde derive: expected `:` after field name, got {other:?}"
                ))
            }
        }
        skip_type_until_comma(&mut c);
    }
    Ok(fields)
}

/// Consumes type tokens up to and including the next top-level `,`.
fn skip_type_until_comma(c: &mut Cursor) {
    let mut angle_depth = 0usize;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0usize;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut c);
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                c.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip a possible discriminant and the trailing comma.
        let mut angle_depth = 0usize;
        while let Some(t) = c.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        c.next();
                        break;
                    }
                    _ => {}
                }
            }
            c.next();
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
                }
                // Newtype structs serialize transparently, like real serde.
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let pairs: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), \
                              ::serde::Value::Object(::std::vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({v:?}), {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_named_constructor(path: &str, names: &[String], obj_expr: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::field({obj_expr}, {f:?}))\
                 .map_err(|e| ::serde::DeError::new(::std::format!(\
                 \"{path}.{f}: {{}}\", e)))?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", fields.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let ctor = gen_named_constructor(name, names, "__obj");
                    format!(
                        "let __obj = ::serde::expect_object(v, {name:?})?;\n\
                         ::std::result::Result::Ok({ctor})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({})),\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected({name:?}, other)),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Named(names) => {
                        let path = format!("{name}::{v}");
                        let ctor = gen_named_constructor(&path, names, "__obj");
                        format!(
                            "{v:?} => {{\n\
                                 let __obj = ::serde::expect_object(__inner, {path:?})?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }}"
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{v:?} => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => match __inner {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{v}({})),\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\"variant tuple\", other)),\n\
                             }},",
                            items.join(", ")
                        )
                    }
                    Fields::Unit => unreachable!("filtered above"),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__pairs[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected({name:?}, other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
