//! Offline vendored stand-in for the `serde` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external dependencies are replaced by small vendored implementations that
//! cover exactly the API surface the workspace uses. This crate provides:
//!
//! - [`Serialize`] / [`Deserialize`] traits over a simple JSON-like
//!   [`Value`] data model (rather than real serde's visitor architecture),
//! - `#[derive(Serialize, Deserialize)]` proc macros (re-exported from the
//!   companion `serde_derive` crate) supporting named structs, tuple
//!   structs, and enums with unit/struct/tuple variants,
//! - implementations for the primitive, array, tuple, `Option` and `Vec`
//!   types the workspace serializes.
//!
//! The companion vendored `serde_json` crate renders [`Value`] to JSON text
//! and parses it back. Field order is preserved, newtype structs
//! transparently serialize their inner value, and enums use the externally
//! tagged representation — all matching real serde's default behavior so the
//! emitted JSON stays conventional.

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
///
/// Integers keep their signedness so `u64`/`usize` round-trip exactly;
/// objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A static `null`, used when an object field is absent.
    pub const NULL: Value = Value::Null;

    /// The value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// What went wrong.
    pub message: String,
}

impl DeError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Standard "expected X, found Y" constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the data model into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Derive-support helpers (used by the generated code; not a public API in
// real serde, but harmless to expose here).
// ---------------------------------------------------------------------------

/// Expects an object and returns its fields.
pub fn expect_object<'a>(v: &'a Value, type_name: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Object(pairs) => Ok(pairs),
        other => Err(DeError::new(format!(
            "expected object for {type_name}, found {}",
            other.kind()
        ))),
    }
}

/// Looks up a field by name, yielding `null` when absent so `Option` fields
/// deserialize to `None` and everything else reports a type mismatch.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::NULL)
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::I64(i) => i,
                    Value::U64(u) if u <= i64::MAX as u64 => u as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(u) => Ok(u as f64),
            Value::I64(i) => Ok(i as f64),
            // Non-finite floats serialize as null (JSON has no representation
            // for them); read them back as NaN.
            Value::Null => Ok(f64::NAN),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError::new(format!(
                        "expected {ARITY}-tuple, found array of length {}",
                        items.len()
                    ))),
                    other => Err(DeError::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(a, back);
        let t = (1usize, 2.5f64);
        let back: (usize, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(field(&obj, "a"), &Value::U64(1));
        assert_eq!(field(&obj, "b"), &Value::Null);
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = bool::from_value(&Value::Str("no".into())).unwrap_err();
        assert!(err.message.contains("expected bool"));
        assert!(err.message.contains("string"));
    }
}
